//! Virtualizing a simulation pipeline (§III-E): a fine-grain simulation
//! consumes the output of a coarse-grain one. Both stages are
//! virtualized, each with its own DV daemon; when the fine stage
//! re-simulates, its simulator *acquires its inputs from the coarse
//! context* — recursively triggering coarse re-simulations for missing
//! inputs, exactly the cascade of Fig. 6.
//!
//! ```sh
//! cargo run --example pipeline
//! ```

use simbatch::{JobHandle, JobId, JobLauncher, SpawnSpec};
use simfs::prelude::*;
use simfs_core::client::SimulatorSession;
use simfs_core::server::env_keys;
use std::collections::HashMap;
use std::io;
use std::net::SocketAddr;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Coarse-stage step content: a pure function of the key.
fn coarse_bytes(key: u64) -> Vec<u8> {
    let mut ds = Dataset::new(key, key as f64);
    ds.set_attr("stage", "coarse");
    ds.add_var(
        "boundary",
        vec![4],
        simstore::Data::F64(vec![key as f64, key as f64 * 0.5, -1.0, 1.0]),
    )
    .expect("boundary field");
    ds.encode().to_vec()
}

/// The fine-stage simulator: for each fine output step it *acquires*
/// the corresponding coarse step through the coarse DV (blocking until
/// the coarse context re-simulates it if missing), then derives its
/// output from the coarse boundary data.
struct FineLauncher {
    coarse_addr: OnceLock<SocketAddr>,
    coarse_storage: StorageArea,
    kills: Mutex<HashMap<JobId, Arc<std::sync::atomic::AtomicBool>>>,
}

impl JobLauncher for FineLauncher {
    fn launch(&self, job: JobId, spec: &SpawnSpec) -> io::Result<JobHandle> {
        let get = |flag: &str| -> u64 {
            let pos = spec.args.iter().position(|a| a == flag).expect("flag");
            spec.args[pos + 1].parse().expect("number")
        };
        let (start, stop) = (get("--start-key"), get("--stop-key"));
        let env = |k: &str| -> String {
            spec.env
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.clone())
                .expect("env")
        };
        let addr = env(env_keys::DV_ADDR);
        let sim_id: u64 = env(env_keys::SIM_ID).parse().expect("sim id");
        let data_dir = env(env_keys::DATA_DIR);
        let coarse_addr = *self.coarse_addr.get().expect("coarse daemon up");
        let coarse_storage = self.coarse_storage.clone();
        let killed = Arc::new(std::sync::atomic::AtomicBool::new(false));
        self.kills.lock().unwrap().insert(job, Arc::clone(&killed));

        std::thread::spawn(move || {
            let run = || -> io::Result<()> {
                let area = StorageArea::create(&data_dir, u64::MAX)?;
                let mut session = SimulatorSession::connect(&addr, "fine", sim_id)?;
                // The fine stage is itself an analysis client of the
                // coarse context (§III-E, Fig. 6).
                let mut inputs = SimfsClient::connect(coarse_addr, "coarse")?;
                std::thread::sleep(Duration::from_millis(10));
                session.started()?;
                for key in start..=stop {
                    if killed.load(std::sync::atomic::Ordering::SeqCst) {
                        return Ok(());
                    }
                    // Fine step k needs coarse step ceil(k/2): acquire
                    // through the coarse DV — may trigger a coarse
                    // re-simulation.
                    let coarse_key = key.div_ceil(2);
                    let status = inputs.acquire(&[coarse_key])?;
                    if !status.ok() {
                        return Err(io::Error::other("coarse input unavailable"));
                    }
                    let coarse =
                        coarse_storage.read(&format!("out-{coarse_key:06}.sdf"))?;
                    let coarse_ds = Dataset::decode(&coarse).map_err(io::Error::other)?;
                    let boundary = coarse_ds
                        .var("boundary")
                        .and_then(|v| v.data.as_f64())
                        .expect("boundary");
                    inputs.release(coarse_key)?;

                    let mut ds = Dataset::new(key, key as f64);
                    ds.set_attr("stage", "fine");
                    ds.set_attr("coarse_input", coarse_key.to_string());
                    let refined: Vec<f64> =
                        boundary.iter().map(|x| x * 2.0 + key as f64 * 0.01).collect();
                    ds.add_var("refined", vec![4], simstore::Data::F64(refined))
                        .expect("refined field");
                    std::thread::sleep(Duration::from_millis(3));
                    let size = area.publish(&format!("out-{key:06}.sdf"), &ds.encode())?;
                    session.file_produced(key, size)?;
                }
                session.finished()
            };
            let _ = run();
        });
        Ok(JobHandle { job, pid: 0 })
    }

    fn kill(&self, job: JobId) -> io::Result<()> {
        if let Some(flag) = self.kills.lock().unwrap().remove(&job) {
            flag.store(true, std::sync::atomic::Ordering::SeqCst);
        }
        Ok(())
    }

    fn reap(&self) -> Vec<(JobId, bool)> {
        Vec::new()
    }
}

fn main() -> io::Result<()> {
    let base = std::env::temp_dir().join(format!("simfs-pipeline-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let coarse_storage = StorageArea::create(base.join("coarse"), u64::MAX)?;
    let fine_storage = StorageArea::create(base.join("fine"), u64::MAX)?;
    let driver = Arc::new(PatternDriver::new("out-", ".sdf", 6));

    // --- stage 1: coarse context (64 steps, restart every 8).
    let coarse_ctx = ContextCfg::new("coarse", StepMath::new(1, 8, 64), 1024, 1 << 20)
        .with_smax(4);
    let coarse_launcher = Arc::new(ThreadSimLauncher::new(
        coarse_bytes,
        |key| format!("out-{key:06}.sdf"),
        Duration::from_millis(10),
        Duration::from_millis(2),
    ));
    let coarse = DvServer::start(
        ServerConfig {
            ctx: coarse_ctx,
            driver: driver.clone(),
            storage: coarse_storage.clone(),
            launcher: coarse_launcher,
            checksums: HashMap::new(),
            dv_shards: 1,
            cluster: ClusterMember::SOLO,
            durability: DurabilityCfg::default(),
        },
        "127.0.0.1:0",
    )?;
    println!("coarse DV on {}", coarse.addr());

    // --- stage 2: fine context (128 steps, restart every 16); its
    // simulator pulls inputs from the coarse DV.
    let fine_launcher = Arc::new(FineLauncher {
        coarse_addr: OnceLock::new(),
        coarse_storage: coarse_storage.clone(),
        kills: Mutex::new(HashMap::new()),
    });
    fine_launcher.coarse_addr.set(coarse.addr()).unwrap();
    let fine_ctx = ContextCfg::new("fine", StepMath::new(1, 16, 128), 1024, 1 << 20)
        .with_smax(2);
    let fine = DvServer::start(
        ServerConfig {
            ctx: fine_ctx,
            driver: driver.clone(),
            storage: fine_storage.clone(),
            launcher: fine_launcher,
            checksums: HashMap::new(),
            dv_shards: 1,
            cluster: ClusterMember::SOLO,
            durability: DurabilityCfg::default(),
        },
        "127.0.0.1:0",
    )?;
    println!("fine DV on {} (inputs virtualized from coarse)", fine.addr());

    // --- analysis on the *fine* context only.
    let mut client = SimfsClient::connect(fine.addr(), "fine")?;
    println!("\nanalysis acquires fine steps 33..=40 (nothing materialized anywhere):");
    for key in 33..=40u64 {
        let status = client.acquire(&[key])?;
        assert!(status.ok(), "{status:?}");
        let ds = Dataset::decode(&fine_storage.read(&format!("out-{key:06}.sdf"))?)
            .map_err(io::Error::other)?;
        println!(
            "  fine step {key}: derived from coarse step {}",
            ds.attr("coarse_input").unwrap_or("?")
        );
        client.release(key)?;
    }

    let cs = coarse.stats();
    let fs = fine.stats();
    println!(
        "\ncascade: fine DV ran {} re-simulation(s); coarse DV ran {} to feed it",
        fs.restarts, cs.restarts
    );
    assert!(cs.restarts > 0, "coarse stage must have been re-simulated");

    client.finalize()?;
    fine.shutdown();
    coarse.shutdown();
    // The flag-based kill in FineLauncher is asynchronous: a killed
    // prefetch thread may still drain its current step (re-creating
    // storage paths) after the DVs report quiescent. Retry the cleanup
    // while those threads wind down.
    let mut cleaned = std::fs::remove_dir_all(&base);
    for _ in 0..100 {
        if cleaned.is_ok() {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
        cleaned = std::fs::remove_dir_all(&base);
    }
    cleaned?;
    println!("\npipeline virtualization OK");
    Ok(())
}
