//! Real-mode job launching: simulator processes for the TCP daemon.
//!
//! In the paper the DV executes a driver-generated script that submits
//! the re-simulation to the batch system (§III-B "this function creates
//! a script that the DV can execute to start the new simulation"). Here
//! a [`SpawnSpec`] is the structured equivalent of that script, and
//! [`ProcessLauncher`] executes it as a child process.
//!
//! [`JobLauncher`] is a trait so tests can substitute an in-process fake
//! and the DES harness can ignore launching entirely.

use std::collections::HashMap;
use std::io;
use std::process::{Child, Command, Stdio};
use std::sync::Mutex;

use crate::cluster::JobId;

/// Everything needed to start one re-simulation job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpawnSpec {
    /// Executable to run (the simulator binary, e.g. `simfs-simd`).
    pub program: String,
    /// Command-line arguments (start/stop steps, context config, ...).
    pub args: Vec<String>,
    /// Extra environment variables (e.g. the DV's address).
    pub env: Vec<(String, String)>,
    /// Working directory, if different from the daemon's.
    pub cwd: Option<String>,
}

impl SpawnSpec {
    /// A spec running `program` with the given arguments.
    pub fn new(program: impl Into<String>, args: Vec<String>) -> Self {
        SpawnSpec {
            program: program.into(),
            args,
            env: Vec::new(),
            cwd: None,
        }
    }

    /// Adds an environment variable.
    pub fn env(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.env.push((key.into(), value.into()));
        self
    }

    /// The equivalent shell command line (for logs and debugging).
    pub fn command_line(&self) -> String {
        let mut parts = vec![self.program.clone()];
        parts.extend(self.args.iter().cloned());
        parts.join(" ")
    }
}

/// Handle to a launched job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JobHandle {
    /// The batch-level job id this process realizes.
    pub job: JobId,
    /// OS process id (0 for fake launchers).
    pub pid: u32,
}

/// Launch/kill abstraction over simulator jobs.
pub trait JobLauncher: Send + Sync {
    /// Starts the job described by `spec`.
    fn launch(&self, job: JobId, spec: &SpawnSpec) -> io::Result<JobHandle>;

    /// Requests termination of a previously launched job (used when the
    /// DV kills prefetched simulations, §IV-C). Unknown jobs are a no-op.
    fn kill(&self, job: JobId) -> io::Result<()>;

    /// Reaps finished children; returns the jobs that exited and whether
    /// they succeeded.
    fn reap(&self) -> Vec<(JobId, bool)>;
}

/// Launches simulator jobs as OS child processes.
pub struct ProcessLauncher {
    children: Mutex<HashMap<JobId, Child>>,
}

impl Default for ProcessLauncher {
    fn default() -> Self {
        Self::new()
    }
}

impl ProcessLauncher {
    /// A launcher with no children yet.
    pub fn new() -> Self {
        ProcessLauncher {
            children: Mutex::new(HashMap::new()),
        }
    }

    /// Number of live (unreaped) children.
    pub fn live(&self) -> usize {
        self.children.lock().expect("launcher lock").len()
    }
}

impl JobLauncher for ProcessLauncher {
    fn launch(&self, job: JobId, spec: &SpawnSpec) -> io::Result<JobHandle> {
        let mut cmd = Command::new(&spec.program);
        cmd.args(&spec.args)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::inherit());
        for (k, v) in &spec.env {
            cmd.env(k, v);
        }
        if let Some(cwd) = &spec.cwd {
            cmd.current_dir(cwd);
        }
        let child = cmd.spawn()?;
        let pid = child.id();
        self.children
            .lock()
            .expect("launcher lock")
            .insert(job, child);
        Ok(JobHandle { job, pid })
    }

    fn kill(&self, job: JobId) -> io::Result<()> {
        let mut children = self.children.lock().expect("launcher lock");
        if let Some(mut child) = children.remove(&job) {
            // The child may have exited already; that is fine.
            let _ = child.kill();
            let _ = child.wait();
        }
        Ok(())
    }

    fn reap(&self) -> Vec<(JobId, bool)> {
        let mut children = self.children.lock().expect("launcher lock");
        let mut done = Vec::new();
        children.retain(|&job, child| match classify_exit(child.try_wait()) {
            Some(success) => {
                done.push((job, success));
                false
            }
            None => true,
        });
        done
    }
}

/// Maps one `try_wait` poll to a reap decision: `Some(success)` retires
/// the child, `None` keeps polling. An `Err` from the poll retires the
/// child as failed — carrying it would re-poll a wedged handle forever
/// and hang the job's waiters, the exact silent-carry bug this replaces.
fn classify_exit(poll: io::Result<Option<std::process::ExitStatus>>) -> Option<bool> {
    match poll {
        Ok(Some(status)) => Some(status.success()),
        Ok(None) => None,
        Err(_) => Some(false),
    }
}

impl Drop for ProcessLauncher {
    fn drop(&mut self) {
        // Never leak simulator processes past the daemon's lifetime.
        let mut children = self.children.lock().expect("launcher lock");
        for (_, child) in children.iter_mut() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn spawn_spec_builder() {
        let spec = SpawnSpec::new("sim", vec!["--start".into(), "5".into()])
            .env("DV_ADDR", "127.0.0.1:9000");
        assert_eq!(spec.command_line(), "sim --start 5");
        assert_eq!(spec.env.len(), 1);
    }

    #[test]
    fn launch_and_reap_true() {
        let launcher = ProcessLauncher::new();
        let spec = SpawnSpec::new("true", vec![]);
        launcher.launch(JobId(1), &spec).unwrap();
        // Poll until the child exits.
        let mut reaped = Vec::new();
        for _ in 0..200 {
            reaped = launcher.reap();
            if !reaped.is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(reaped, vec![(JobId(1), true)]);
        assert_eq!(launcher.live(), 0);
    }

    #[test]
    fn failing_child_reports_failure() {
        let launcher = ProcessLauncher::new();
        launcher.launch(JobId(2), &SpawnSpec::new("false", vec![])).unwrap();
        let mut reaped = Vec::new();
        for _ in 0..200 {
            reaped = launcher.reap();
            if !reaped.is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(reaped, vec![(JobId(2), false)]);
    }

    #[test]
    fn kill_terminates_long_running_child() {
        let launcher = ProcessLauncher::new();
        launcher
            .launch(JobId(3), &SpawnSpec::new("sleep", vec!["30".into()]))
            .unwrap();
        assert_eq!(launcher.live(), 1);
        launcher.kill(JobId(3)).unwrap();
        assert_eq!(launcher.live(), 0);
    }

    #[test]
    fn kill_unknown_job_is_noop() {
        let launcher = ProcessLauncher::new();
        launcher.kill(JobId(9)).unwrap();
    }

    #[test]
    fn classify_exit_covers_all_poll_outcomes() {
        use std::os::unix::process::ExitStatusExt;
        let clean = std::process::ExitStatus::from_raw(0);
        assert_eq!(classify_exit(Ok(Some(clean))), Some(true));
        // Non-zero exit and death-by-signal both fail.
        let failed = std::process::ExitStatus::from_raw(1 << 8);
        assert_eq!(classify_exit(Ok(Some(failed))), Some(false));
        let signalled = std::process::ExitStatus::from_raw(9);
        assert_eq!(classify_exit(Ok(Some(signalled))), Some(false));
        // Still running: keep polling.
        assert_eq!(classify_exit(Ok(None)), None);
        // A broken poll retires the job as failed instead of carrying
        // it forever.
        let err = io::Error::other("waitpid exploded");
        assert_eq!(classify_exit(Err(err)), Some(false));
    }

    #[test]
    fn missing_program_errors() {
        let launcher = ProcessLauncher::new();
        let err = launcher.launch(
            JobId(4),
            &SpawnSpec::new("/nonexistent/simfs-simulator-binary", vec![]),
        );
        assert!(err.is_err());
    }
}
