//! [`HitIndex`]: a concurrent resident-key index for lock-free hit
//! serving.
//!
//! The Data Virtualizer's hot path — an acquire of an already
//! materialized output step — is a pure read of the cache index plus a
//! reference-count bump, yet a mutex-guarded [`CacheSim`] makes it pay
//! the same exclusive lock as a miss that mutates LRU state and
//! launches a re-simulation. The `HitIndex` is a sharded, read-mostly
//! replica of the cache's *membership* that front-ends may consult
//! before (instead of) taking the DV lock:
//!
//! * **Fast hit:** [`try_hit_pin`](HitIndex::try_hit_pin) takes one
//!   shard read lock, bumps the entry's atomic pin count and marks its
//!   reference bit. Holding the read lock across the pin increment is
//!   what makes the pin *eviction-visible*: retirement requires the
//!   shard write lock, so no eviction can interleave between "key is
//!   resident" and "key is pinned".
//! * **Fast release:** [`unpin`](HitIndex::unpin) decrements the atomic
//!   count under the same read lock.
//! * **Eviction:** the cache owner (holding its own lock) calls
//!   [`try_retire`](HitIndex::try_retire) on each victim. A fast-pinned
//!   entry vetoes the eviction outright; an entry whose reference bit
//!   is set survives one round with the bit cleared (CLOCK-style second
//!   chance — the concurrent hit *would* have refreshed its recency had
//!   it gone through the locked path). Each retirement records its key
//!   and bumps the shard's generation so a concurrent fast-path miss
//!   for that same key can tell "never resident" from "lost a race
//!   with this eviction" and count the fallback.
//!
//! Membership writes ([`publish`](HitIndex::publish)/`try_retire`) are
//! the cache owner's job and are assumed to be serialized by the
//! owner's own lock; the index adds safe concurrent *readers* on top,
//! not a second writer.
//!
//! [`CacheSim`]: crate::CacheSim

use crate::fasthash::{u64_map, U64Map};
use simkit::lockrank;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::RwLock;

/// Outcome of [`HitIndex::try_retire`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Retire {
    /// The key was removed from the index; the caller may evict it.
    Retired,
    /// The key holds live fast pins; eviction must pick another victim.
    Pinned,
    /// The key's reference bit was set (a fast hit landed since the
    /// last eviction decision); the bit is now cleared and the key
    /// stays — treat it as freshly used.
    Hot,
    /// The key was not in the index (the caller never published it).
    Absent,
}

struct Entry {
    /// Pins taken on the fast path and not yet released.
    pins: AtomicU32,
    /// CLOCK reference bit: set by fast hits, cleared (once) by a
    /// retirement attempt.
    hot: AtomicBool,
}

struct Shard {
    map: RwLock<U64Map<Entry>>,
    /// Bumped on every retirement; lets a racing fast-path miss detect
    /// that an eviction interleaved with its lookup.
    generation: AtomicU64,
    /// The key the most recent retirement removed, stored before the
    /// generation bump: a racing miss counts a fallback only when the
    /// retired key is *its* key, not merely a shard neighbour.
    last_retired: AtomicU64,
}

/// Sharded concurrent index of resident (materialized) keys.
pub struct HitIndex {
    shards: Box<[Shard]>,
    /// Shard count minus one (shard count is a power of two).
    mask: u64,
    /// Hit acquires served entirely through the index.
    fast_hits: AtomicU64,
    /// Fast-path lookups that missed *and* observed a concurrent
    /// retirement of their own key — the epoch fallback of a hit
    /// racing an eviction.
    race_fallbacks: AtomicU64,
}

impl HitIndex {
    /// Creates an index with at least `shards` lock shards (rounded up
    /// to a power of two, minimum 1).
    pub fn new(shards: usize) -> HitIndex {
        let n = shards.max(1).next_power_of_two();
        HitIndex {
            shards: (0..n)
                .map(|_| Shard {
                    map: RwLock::new(u64_map()),
                    generation: AtomicU64::new(0),
                    last_retired: AtomicU64::new(u64::MAX),
                })
                .collect(),
            mask: (n - 1) as u64,
            fast_hits: AtomicU64::new(0),
            race_fallbacks: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u64) -> &Shard {
        // Keys are sequential step indices; spread neighbours across
        // shards so one hot interval does not serialize on one lock.
        &self.shards[(key & self.mask) as usize]
    }

    /// Registers `key` as resident (no pins, reference bit clear).
    /// Idempotent: re-publishing a resident key resets nothing.
    pub fn publish(&self, key: u64) {
        let shard = self.shard(key);
        let _rank = lockrank::held(lockrank::HIT_INDEX);
        let mut map = shard.map.write().unwrap_or_else(|e| e.into_inner());
        map.entry(key).or_insert_with(|| Entry {
            pins: AtomicU32::new(0),
            hot: AtomicBool::new(false),
        });
    }

    /// Serves a hit: if `key` is resident, pins it (count +1), sets its
    /// reference bit and returns `true`. On a miss, returns `false` and
    /// counts an epoch fallback if a retirement of `key` itself raced
    /// the lookup.
    pub fn try_hit_pin(&self, key: u64) -> bool {
        let shard = self.shard(key);
        let gen_before = shard.generation.load(Ordering::Acquire);
        {
            let _rank = lockrank::held(lockrank::HIT_INDEX);
            let map = shard.map.read().unwrap_or_else(|e| e.into_inner());
            if let Some(entry) = map.get(&key) {
                // Still under the read lock: retirement (write lock)
                // cannot interleave, so this pin is eviction-visible
                // before the caller ever replies to its client.
                entry.pins.fetch_add(1, Ordering::AcqRel);
                entry.hot.store(true, Ordering::Release);
                self.fast_hits.fetch_add(1, Ordering::Relaxed);
                return true;
            }
        }
        // A fallback is a retirement of *this* key interleaving with
        // the lookup: the generation must have moved during the attempt
        // and the retired key must be ours (a neighbour sharing the
        // shard is not a race with this hit). Two retirements in the
        // window can hide the first key — the counter is a tight lower
        // bound, never shard-wide noise.
        if shard.generation.load(Ordering::Acquire) != gen_before
            && shard.last_retired.load(Ordering::Acquire) == key
        {
            self.race_fallbacks.fetch_add(1, Ordering::Relaxed);
        }
        false
    }

    /// Releases `n` fast pins of `key`. The caller must hold them
    /// (fast pins block retirement, so the entry is necessarily still
    /// resident).
    pub fn unpin(&self, key: u64, n: u32) {
        let shard = self.shard(key);
        let _rank = lockrank::held(lockrank::HIT_INDEX);
        let map = shard.map.read().unwrap_or_else(|e| e.into_inner());
        if let Some(entry) = map.get(&key) {
            let before = entry.pins.fetch_sub(n, Ordering::AcqRel);
            debug_assert!(before >= n, "fast-pin underflow on key {key}");
        } else {
            debug_assert!(false, "unpin of unindexed key {key}");
        }
    }

    /// Is `key` currently fast-pinned? Cheap, possibly stale — use as
    /// an eviction pre-filter; [`try_retire`](Self::try_retire) is the
    /// authoritative gate.
    pub fn is_pinned(&self, key: u64) -> bool {
        let shard = self.shard(key);
        let _rank = lockrank::held(lockrank::HIT_INDEX);
        let map = shard.map.read().unwrap_or_else(|e| e.into_inner());
        map.get(&key)
            .is_some_and(|e| e.pins.load(Ordering::Acquire) > 0)
    }

    /// Attempts to retire `key` ahead of an eviction. See [`Retire`].
    pub fn try_retire(&self, key: u64) -> Retire {
        let shard = self.shard(key);
        let _rank = lockrank::held(lockrank::HIT_INDEX);
        let mut map = shard.map.write().unwrap_or_else(|e| e.into_inner());
        let Some(entry) = map.get(&key) else {
            return Retire::Absent;
        };
        if entry.pins.load(Ordering::Acquire) > 0 {
            return Retire::Pinned;
        }
        if entry.hot.swap(false, Ordering::AcqRel) {
            return Retire::Hot;
        }
        map.remove(&key);
        // Publish the retirement before any fast path can re-probe: a
        // concurrent lookup for this key that misses now attributes it
        // to this race. Key first, then the generation bump that makes
        // a racing miss look at it.
        shard.last_retired.store(key, Ordering::Release);
        shard.generation.fetch_add(1, Ordering::Release);
        Retire::Retired
    }

    /// Removes `key` unconditionally (teardown path): fast pins are
    /// *not* honoured. The owner must have quiesced fast-path traffic.
    pub fn withdraw(&self, key: u64) {
        let shard = self.shard(key);
        let _rank = lockrank::held(lockrank::HIT_INDEX);
        let mut map = shard.map.write().unwrap_or_else(|e| e.into_inner());
        if map.remove(&key).is_some() {
            shard.last_retired.store(key, Ordering::Release);
            shard.generation.fetch_add(1, Ordering::Release);
        }
    }

    /// Number of resident keys (sums the shards; approximate under
    /// concurrent writers).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let _rank = lockrank::held(lockrank::HIT_INDEX);
                s.map.read().unwrap_or_else(|e| e.into_inner()).len()
            })
            .sum()
    }

    /// True if no keys are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit acquires served entirely through the index.
    pub fn fast_hits(&self) -> u64 {
        self.fast_hits.load(Ordering::Relaxed)
    }

    /// Fast-path misses that raced a retirement of their own key
    /// (epoch fallbacks).
    pub fn race_fallbacks(&self) -> u64 {
        self.race_fallbacks.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn publish_pin_retire_cycle() {
        let idx = HitIndex::new(4);
        assert!(!idx.try_hit_pin(7), "nothing published yet");
        idx.publish(7);
        assert!(idx.try_hit_pin(7));
        assert!(idx.is_pinned(7));
        assert_eq!(idx.try_retire(7), Retire::Pinned);
        idx.unpin(7, 1);
        // The hit set the reference bit: first retirement attempt gives
        // a second chance, the next one retires.
        assert_eq!(idx.try_retire(7), Retire::Hot);
        assert_eq!(idx.try_retire(7), Retire::Retired);
        assert_eq!(idx.try_retire(7), Retire::Absent);
        assert!(!idx.try_hit_pin(7));
    }

    #[test]
    fn nested_pins_block_retirement_until_all_released() {
        let idx = HitIndex::new(1);
        idx.publish(3);
        assert!(idx.try_hit_pin(3));
        assert!(idx.try_hit_pin(3));
        idx.unpin(3, 1);
        assert_eq!(idx.try_retire(3), Retire::Pinned);
        idx.unpin(3, 1);
        assert_eq!(idx.try_retire(3), Retire::Hot);
        assert_eq!(idx.try_retire(3), Retire::Retired);
    }

    #[test]
    fn retirement_race_is_counted_as_fallback() {
        let idx = HitIndex::new(1); // one shard: the generations collide
        idx.publish(1);
        idx.publish(2);
        assert_eq!(idx.try_retire(1), Retire::Retired);
        // A lookup that misses counts as an epoch fallback only when
        // the generation moved *during* the attempt and the retired
        // key was its own — neither observable single-threaded.
        // Exercise the other half: a cold miss with no concurrent
        // retirement counts nothing.
        let before = idx.race_fallbacks();
        assert!(!idx.try_hit_pin(99));
        assert_eq!(idx.race_fallbacks(), before);
    }

    #[test]
    fn concurrent_pinners_and_retirer_never_strand_a_pin() {
        // Hammer one key with pin/unpin pairs from several threads
        // while another thread retires aggressively; at the end either
        // the key was retired (and every pinner fell back) or every
        // pin was released.
        let idx = Arc::new(HitIndex::new(2));
        idx.publish(5);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let idx = Arc::clone(&idx);
            handles.push(std::thread::spawn(move || {
                let mut fast = 0u64;
                for _ in 0..10_000 {
                    if idx.try_hit_pin(5) {
                        fast += 1;
                        idx.unpin(5, 1);
                    }
                }
                fast
            }));
        }
        let retirer = {
            let idx = Arc::clone(&idx);
            std::thread::spawn(move || {
                for _ in 0..10_000 {
                    if idx.try_retire(5) == Retire::Retired {
                        idx.publish(5); // revive so pinners keep racing
                    }
                }
            })
        };
        let fast: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        retirer.join().unwrap();
        assert_eq!(idx.fast_hits(), fast);
        assert!(!idx.is_pinned(5), "all pins must have been released");
    }
}
