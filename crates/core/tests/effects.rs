//! Effect-execution tier tests: pooled vs inline equivalence,
//! head-of-line blocking, queue backpressure, supervision with helpers
//! on, and the saturated-stream digest guarantee.
//!
//! The daemon's default is pool ON (one helper per reactor shard);
//! `effect_helpers: Some(0)` is the inline compatibility mode these
//! tests use as the counterfactual.

use simbatch::ParallelismMap;
use simfs_core::client::SimfsClient;
use simfs_core::driver::{PatternDriver, SimDriver};
use simfs_core::model::{ContextCfg, StepMath};
use simfs_core::server::{
    ClusterMember, DaemonTuning, DurabilityCfg, DvServer, ServerConfig, SimFaultSpec,
    ThreadSimLauncher,
};
use simstore::{Data, Dataset, StorageArea};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn step_bytes(key: u64) -> Vec<u8> {
    let mut ds = Dataset::new(key, key as f64);
    ds.set_attr("simulator", "synthetic");
    let field: Vec<f64> = (0..16).map(|i| (key * 31 + i) as f64).collect();
    ds.add_var("field", vec![16], Data::F64(field)).unwrap();
    ds.encode().to_vec()
}

struct Fixture {
    server: DvServer,
    storage: StorageArea,
    _dir: std::path::PathBuf,
}

struct FixtureCfg {
    cache_steps: u64,
    smax: u32,
    prefetch: bool,
    faults: SimFaultSpec,
    supervisor: Option<simfs_core::model::SupervisorCfg>,
    tuning: DaemonTuning,
}

impl Default for FixtureCfg {
    fn default() -> FixtureCfg {
        FixtureCfg {
            cache_steps: 1000,
            smax: 8,
            prefetch: false,
            faults: SimFaultSpec::default(),
            supervisor: None,
            tuning: DaemonTuning::default(),
        }
    }
}

/// One-DV-shard daemon over a fresh storage area with explicit
/// [`DaemonTuning`] — the knob under test here.
fn start_daemon(tag: &str, cfg: FixtureCfg) -> Fixture {
    let dir = std::env::temp_dir().join(format!(
        "simfs-effects-{}-{}-{:?}",
        tag,
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let storage = StorageArea::create(&dir, u64::MAX).unwrap();
    let driver = Arc::new(
        PatternDriver::new("out-", ".sdf", 6)
            .with_parallelism(ParallelismMap::unconstrained(1, 2)),
    );
    let size = step_bytes(1).len() as u64;
    let steps = StepMath::new(1, 4, 64);
    let mut ctx = ContextCfg::new("test-ctx", steps, size, cfg.cache_steps * size)
        .with_policy("dcl")
        .with_smax(cfg.smax)
        .with_prefetch(cfg.prefetch);
    if let Some(sup) = cfg.supervisor {
        ctx = ctx.with_supervisor(sup);
    }
    let checksums: HashMap<u64, u64> = (1..=8)
        .map(|k| (k, simstore::fnv1a64(&step_bytes(k))))
        .collect();
    let launcher = Arc::new(
        ThreadSimLauncher::new(
            step_bytes,
            |key| PatternDriver::new("out-", ".sdf", 6).filename_of(key),
            Duration::from_millis(2),
            Duration::from_millis(1),
        )
        .with_faults(cfg.faults),
    );
    let server = DvServer::start_tuned(
        vec![ServerConfig {
            ctx,
            driver,
            storage: storage.clone(),
            launcher,
            checksums,
            dv_shards: 1,
            cluster: ClusterMember::SOLO,
            durability: DurabilityCfg::default(),
        }],
        "127.0.0.1:0",
        cfg.tuning,
    )
    .unwrap();
    Fixture {
        server,
        storage,
        _dir: dir,
    }
}

fn sorted(mut v: Vec<u64>) -> Vec<u64> {
    v.sort_unstable();
    v
}

/// Polls the status API until no re-simulation is active, so the next
/// op's hit/miss classification is timing-independent.
fn settle(client: &mut SimfsClient) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let st = client.status().unwrap();
        if st.active_sims == 0 {
            return;
        }
        assert!(Instant::now() < deadline, "sims never settled: {st:?}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// The pooled ≡ inline contract, end to end over real sockets: the
/// same deterministic request sequence driven through a default
/// (effect-pool) daemon and through an inline (`effect_helpers =
/// Some(0)`) daemon must produce identical client-visible outcomes —
/// per-request ready/failed sets, identical
/// hit/miss/restart/production/eviction totals after quiescence, and
/// identical final storage listings. The effect tier may only change
/// *where* effects execute, never *what* they do.
#[test]
fn pooled_and_inline_daemons_serve_identical_outcomes() {
    // A cache of 12 steps (3 intervals at B = 4) forces evictions
    // mid-sequence, exercising the pooled delete path; every acquire
    // is blocking and settled before the next op, so the eviction
    // decisions are deterministic on both sides.
    let mk = |tag: &str, helpers: Option<usize>| {
        start_daemon(
            tag,
            FixtureCfg {
                cache_steps: 12,
                tuning: DaemonTuning {
                    effect_helpers: helpers,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
    };
    let pooled = mk("eq-pooled", None);
    let inline = mk("eq-inline", Some(0));
    let mut pc = SimfsClient::connect(pooled.server.addr(), "test-ctx").unwrap();
    let mut ic = SimfsClient::connect(inline.server.addr(), "test-ctx").unwrap();

    enum Op {
        Acquire(&'static [u64]),
        Release(u64),
    }
    let ops = [
        Op::Acquire(&[2]),
        Op::Acquire(&[6]),
        Op::Acquire(&[2]), // hit
        Op::Release(2),
        Op::Acquire(&[10]),
        Op::Release(6),
        Op::Release(2),
        Op::Acquire(&[14]), // pressure: evicts an unpinned interval
        Op::Acquire(&[18]),
        Op::Acquire(&[9999]), // out of timeline: typed failure
        Op::Release(10),
        Op::Acquire(&[22, 26]),
        Op::Acquire(&[6]), // may re-miss after eviction — same on both
    ];
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Acquire(keys) => {
                let got = pc.acquire(keys).unwrap();
                let want = ic.acquire(keys).unwrap();
                assert_eq!(
                    sorted(got.ready.clone()),
                    sorted(want.ready.clone()),
                    "op {i}: ready sets diverge"
                );
                let got_failed: Vec<u64> = got.failed.iter().map(|(k, _)| *k).collect();
                let want_failed: Vec<u64> = want.failed.iter().map(|(k, _)| *k).collect();
                assert_eq!(
                    sorted(got_failed),
                    sorted(want_failed),
                    "op {i}: failed sets diverge"
                );
                settle(&mut pc);
                settle(&mut ic);
            }
            Op::Release(key) => {
                pc.release(*key).unwrap();
                ic.release(*key).unwrap();
            }
        }
    }
    pc.finalize().unwrap();
    ic.finalize().unwrap();

    // Give queued eviction deletes on the pooled side time to land
    // before comparing the on-disk listings.
    std::thread::sleep(Duration::from_millis(200));
    let ps = pooled.server.stats();
    let is = inline.server.stats();
    for (name, p, i) in [
        ("hits", ps.hits, is.hits),
        ("misses", ps.misses, is.misses),
        ("restarts", ps.restarts, is.restarts),
        ("produced_steps", ps.produced_steps, is.produced_steps),
        ("failures", ps.failures, is.failures),
        ("evictions", ps.evictions, is.evictions),
    ] {
        assert_eq!(p, i, "{name} diverges: pooled {p} vs inline {i}");
    }
    assert!(ps.evictions > 0, "sequence never evicted: {ps:?}");
    assert!(
        ps.effects_offloaded > 0,
        "pooled daemon never used its helpers: {ps:?}"
    );
    assert_eq!(is.effects_offloaded, 0, "inline daemon offloaded: {is:?}");
    let mut plist = pooled.storage.list().unwrap();
    let mut ilist = inline.storage.list().unwrap();
    plist.sort();
    ilist.sort();
    assert_eq!(plist, ilist, "final storage listings diverge");
}

/// Drives the head-of-line scenario: a single-reactor-shard daemon, a
/// slow miss (600 ms synchronous `launch()`) issued from one
/// connection, then timed pure-hit acquires from a second connection.
/// Returns the worst observed hit latency.
fn worst_hit_latency_behind_slow_miss(tag: &str, helpers: Option<usize>) -> Duration {
    let fx = start_daemon(
        tag,
        FixtureCfg {
            faults: SimFaultSpec {
                launch_delay: Duration::from_millis(600),
                ..Default::default()
            },
            tuning: DaemonTuning {
                reactor_shards: 1,
                effect_helpers: helpers,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let addr = fx.server.addr();
    // Warm key 2 so the timed acquires are pure fast-path hits. The
    // warm-up miss pays the launch delay once, before timing starts.
    let mut hitter = SimfsClient::connect(addr, "test-ctx").unwrap();
    let status = hitter.acquire(&[2]).unwrap();
    assert!(status.ok(), "{status:?}");
    settle(&mut hitter);

    // The miss client blocks in acquire() for the whole launch delay,
    // so it runs on its own thread; with one reactor shard its
    // `launch()` stalls the entire daemon front-end in inline mode.
    let misser = std::thread::spawn(move || {
        let mut mc = SimfsClient::connect(addr, "test-ctx").unwrap();
        let status = mc.acquire(&[30]).unwrap();
        assert!(status.ok(), "{status:?}");
        mc.finalize().unwrap();
    });
    // Let the miss frame reach the daemon and enter its transition.
    std::thread::sleep(Duration::from_millis(100));
    let mut worst = Duration::ZERO;
    for _ in 0..10 {
        let t0 = Instant::now();
        let status = hitter.acquire(&[2]).unwrap();
        assert!(status.ok(), "{status:?}");
        worst = worst.max(t0.elapsed());
        hitter.release(2).unwrap();
    }
    misser.join().unwrap();
    hitter.finalize().unwrap();
    worst
}

/// Inline counterfactual: with the pool disabled, the slow miss's
/// synchronous `launch()` runs on the only reactor shard thread and
/// hits queue behind it — the regression the effect tier exists to
/// fix. This test *demonstrates the failure mode*; its partner below
/// shows the pool removing it.
#[test]
fn slow_miss_blocks_hits_without_effect_pool() {
    let worst = worst_hit_latency_behind_slow_miss("hol-inline", Some(0));
    assert!(
        worst >= Duration::from_millis(200),
        "inline mode should stall hits behind the 600 ms launch, worst was {worst:?}"
    );
}

/// With the pool on (default helpers), the launch executes on a helper
/// thread and concurrent hits on the same reactor shard stay fast.
#[test]
fn slow_miss_does_not_block_hits_with_effect_pool() {
    let worst = worst_hit_latency_behind_slow_miss("hol-pooled", None);
    assert!(
        worst < Duration::from_millis(200),
        "pooled hits stalled behind the slow miss, worst was {worst:?}"
    );
}

/// Overflowing a tiny effect queue (capacity 2, one helper, 20 ms per
/// launch) must park the submitting shard thread — backpressure, not
/// loss: every acquire still completes, nothing deadlocks, and the
/// stall is visible in `helper_queue_full`.
#[test]
fn saturated_effect_queue_applies_backpressure_without_loss() {
    let fx = start_daemon(
        "saturate",
        FixtureCfg {
            faults: SimFaultSpec {
                launch_delay: Duration::from_millis(20),
                ..Default::default()
            },
            tuning: DaemonTuning {
                reactor_shards: 1,
                effect_helpers: Some(1),
                effect_queue_cap: 2,
            },
            ..Default::default()
        },
    );
    let mut client = SimfsClient::connect(fx.server.addr(), "test-ctx").unwrap();
    // Eight misses in distinct restart intervals (B = 4) as one merged
    // request: the single commit carries eight 20 ms launches, keeping
    // the lone helper busy ~160 ms while the sims' ~48 protocol events
    // flood the capacity-2 queue and park the submitting shard thread.
    let keys: Vec<u64> = (0..8).map(|i| 1 + i * 4).collect();
    let mut req = client.acquire_nb(&keys).unwrap();
    let status = client.wait(&mut req).unwrap();
    assert!(status.ok(), "{status:?}");
    assert_eq!(sorted(status.ready.clone()), keys);
    let stats = fx.server.stats();
    assert_eq!(stats.failures, 0, "{stats:?}");
    assert_eq!(stats.restarts, 8, "{stats:?}");
    assert!(stats.effects_offloaded > 0, "{stats:?}");
    assert!(
        stats.helper_queue_full >= 1,
        "queue never filled — backpressure untested: {stats:?}"
    );
    for &k in &keys {
        client.release(k).unwrap();
    }
    client.finalize().unwrap();
}

/// The PR 8 supervision ladder (transient crash retry + output
/// integrity) pinned against an explicitly pooled daemon: retries and
/// corrupt-output kills are themselves effects now, and must survive
/// the move onto helper threads.
#[test]
fn fault_supervision_holds_with_effect_pool() {
    let fx = start_daemon(
        "supervised",
        FixtureCfg {
            smax: 4,
            faults: SimFaultSpec {
                crash_quota: 1,
                corrupt_every: 7,
                ..Default::default()
            },
            supervisor: Some(simfs_core::model::SupervisorCfg {
                backoff_base: simkit::Dur::from_millis(2),
                backoff_cap: simkit::Dur::from_millis(10),
                quarantine: simkit::Dur::from_secs(2),
                ..Default::default()
            }),
            tuning: DaemonTuning {
                effect_helpers: Some(2),
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let mut client = SimfsClient::connect(fx.server.addr(), "test-ctx").unwrap();
    // Key 2's first sim crashes (quota 1); key 7's first output is
    // published corrupt. Both intervals must still come Ready.
    let status = client.acquire(&[2]).unwrap();
    assert!(status.ok(), "{status:?}");
    assert_eq!(status.ready, vec![2]);
    let status = client.acquire(&[7]).unwrap();
    assert!(status.ok(), "{status:?}");
    assert_eq!(status.ready, vec![7]);
    let stats = fx.server.stats();
    assert!(stats.sim_retries >= 1, "{stats:?}");
    assert_eq!(stats.corrupt_outputs, 1, "{stats:?}");
    assert_eq!(stats.intervals_poisoned, 0, "{stats:?}");
    assert!(stats.effects_offloaded > 0, "{stats:?}");
    client.finalize().unwrap();
}

/// A single saturated client must not lose digest records: ~3000
/// pure-hit acquires arrive far faster than the 20 ms reactor tick
/// drains, so without the high-water drain the 1024-record access ring
/// would drop roughly half the stream. The adaptive drain keeps
/// `digest_dropped` at zero, so the prefetch agents see every access.
#[test]
fn saturated_single_client_keeps_full_digest() {
    let fx = start_daemon(
        "digest",
        FixtureCfg {
            prefetch: true,
            ..Default::default()
        },
    );
    let mut client = SimfsClient::connect(fx.server.addr(), "test-ctx").unwrap();
    let status = client.acquire(&[2]).unwrap();
    assert!(status.ok(), "{status:?}");
    settle(&mut client);
    for _ in 0..3000 {
        let status = client.acquire(&[2]).unwrap();
        assert!(status.ok(), "{status:?}");
        client.release(2).unwrap();
    }
    // One more slow-path transition plus a couple of ticks so the last
    // partial ring drains before counting.
    std::thread::sleep(Duration::from_millis(60));
    let stats = fx.server.stats();
    assert_eq!(
        stats.digest_dropped, 0,
        "saturated stream dropped digest records: {stats:?}"
    );
    assert!(stats.digest_replayed >= 3000, "{stats:?}");
    client.finalize().unwrap();
}
