//! Result tables: aligned console output plus CSV files under
//! `bench_results/`.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Common harness options parsed from the command line.
///
/// * `--full` — paper-scale repetitions (e.g. 100 for Fig. 5);
/// * `--reps N` — explicit repetition count;
/// * `--seed S` — root seed;
/// * `--out DIR` — CSV output directory (default `bench_results/`).
#[derive(Clone, Debug)]
pub struct RunOpts {
    /// Repetition count for stochastic experiments.
    pub reps: u32,
    /// Root seed.
    pub seed: u64,
    /// CSV output directory.
    pub out_dir: PathBuf,
    /// Paper-scale mode.
    pub full: bool,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            reps: 10,
            seed: 42,
            out_dir: PathBuf::from("bench_results"),
            full: false,
        }
    }
}

impl RunOpts {
    /// Parses `std::env::args`; panics with usage on malformed input.
    pub fn from_args() -> RunOpts {
        let mut opts = RunOpts::default();
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            match argv[i].as_str() {
                "--full" => {
                    opts.full = true;
                    opts.reps = 100;
                }
                "--reps" => {
                    i += 1;
                    opts.reps = argv
                        .get(i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--reps needs a number"));
                }
                "--seed" => {
                    i += 1;
                    opts.seed = argv
                        .get(i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--seed needs a number"));
                }
                "--out" => {
                    i += 1;
                    opts.out_dir = argv
                        .get(i)
                        .map(PathBuf::from)
                        .unwrap_or_else(|| panic!("--out needs a path"));
                }
                other => panic!("unknown option {other:?} (try --full/--reps/--seed/--out)"),
            }
            i += 1;
        }
        opts
    }

    /// A fast configuration for tests: few reps, fixed seed.
    pub fn quick() -> RunOpts {
        RunOpts {
            reps: 3,
            ..RunOpts::default()
        }
    }
}

/// A simple result table (console + CSV).
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// All rows (for shape assertions in tests).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Column index by header name.
    pub fn col(&self, header: &str) -> usize {
        self.headers
            .iter()
            .position(|h| h == header)
            .unwrap_or_else(|| panic!("no column {header:?}"))
    }

    /// Numeric view of one column.
    pub fn column_f64(&self, header: &str) -> Vec<f64> {
        let idx = self.col(header);
        self.rows
            .iter()
            .map(|r| r[idx].parse().unwrap_or(f64::NAN))
            .collect()
    }

    /// Renders to the console with aligned columns.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        println!("\n== {} ==", self.title);
        let header_line: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{h:>w$}", w = widths[i]))
            .collect();
        println!("{}", header_line.join("  "));
        println!("{}", "-".repeat(header_line.join("  ").len()));
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
                .collect();
            println!("{}", line.join("  "));
        }
    }

    /// Writes `<out_dir>/<name>.csv`.
    pub fn write_csv(&self, out_dir: &Path, name: &str) -> io::Result<PathBuf> {
        fs::create_dir_all(out_dir)?;
        let path = out_dir.join(format!("{name}.csv"));
        let mut text = String::new();
        text.push_str(&self.headers.join(","));
        text.push('\n');
        for row in &self.rows {
            text.push_str(&row.join(","));
            text.push('\n');
        }
        fs::write(&path, text)?;
        Ok(path)
    }
}

/// Formats a float with sensible precision for tables.
pub fn fmt(x: f64) -> String {
    if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new("demo", &["x", "y"]);
        t.row(vec!["1".into(), "2.5".into()]);
        t.row(vec!["2".into(), "3.5".into()]);
        assert_eq!(t.column_f64("y"), vec![2.5, 3.5]);
        assert_eq!(t.col("x"), 0);
        let dir = std::env::temp_dir().join(format!("simfs-bench-{}", std::process::id()));
        let path = t.write_csv(&dir, "demo").unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("x,y\n1,2.5\n"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut t = Table::new("demo", &["x", "y"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn fmt_scales_precision() {
        assert_eq!(fmt(12345.6), "12346");
        assert_eq!(fmt(42.25), "42.2");
        assert_eq!(fmt(1.5), "1.500");
    }
}
