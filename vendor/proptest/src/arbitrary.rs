//! `any::<T>()` — full-domain strategies for primitive types.

use crate::strategy::AnyStrategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: std::fmt::Debug + Sized {
    /// Draws one value from the type's whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy generating any `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: PhantomData,
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Raw bit patterns: covers NaNs, infinities, subnormals — the
        // full domain, as real proptest's `any::<f64>()` can.
        f64::from_bits(rng.gen::<u64>())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.gen::<u64>() as u32)
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII keeps generated text debuggable.
        char::from(rng.gen_range(0x20u8..0x7F))
    }
}

impl Arbitrary for crate::sample::Index {
    fn arbitrary(rng: &mut TestRng) -> crate::sample::Index {
        crate::sample::Index::new(rng.gen())
    }
}
