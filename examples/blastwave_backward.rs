//! Root-cause analysis on a blast wave (the paper's FLASH/Sedov
//! scenario, §VI): an analyst spots an interesting state late in the
//! simulation and walks *backward* in time to find its origin — the
//! access pattern of §IV-B2. The example uses the explicit SimFS API
//! (`acquire_nb` / `waitsome`) to overlap analysis with re-simulation.
//!
//! ```sh
//! cargo run --example blastwave_backward
//! ```

use simfs::launchers::KernelLauncher;
use simfs::prelude::*;
use simfs::setup::run_initial_simulation;
use simulators::SimKind;
use std::sync::Arc;
use std::time::Duration;

fn main() -> std::io::Result<()> {
    // FLASH-like cadence: Δd = 1 (output every timestep), Δr = 20.
    let (dd, dr, timesteps) = (1u64, 20u64, 240u64);
    let dir = std::env::temp_dir().join(format!("simfs-blast-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let storage = StorageArea::create(&dir, u64::MAX)?;

    println!("running the initial Sedov blast-wave simulation...");
    let init = run_initial_simulation(&storage, SimKind::Sedov, 0, dd, dr, timesteps)?;
    println!("  {} restart files written", init.restarts);

    let steps = StepMath::new(dd, dr, timesteps);
    let sample = simulators::build_sim(SimKind::Sedov, 0).output().encode();
    let step_bytes = sample.len() as u64;
    let ctx = ContextCfg::new("sedov", steps, step_bytes, 120 * step_bytes)
        .with_policy("dcl")
        .with_smax(4);
    let driver = Arc::new(PatternDriver::new("out-", ".sdf", 6));
    let launcher = Arc::new(KernelLauncher::new(
        SimKind::Sedov,
        dd,
        dr,
        Duration::from_millis(20),
        Duration::from_millis(4),
    ));
    let server = DvServer::start(
        ServerConfig {
            ctx,
            driver: driver.clone(),
            storage: storage.clone(),
            launcher,
            checksums: init.checksums,
            dv_shards: 1,
            cluster: ClusterMember::SOLO,
            durability: DurabilityCfg::default(),
        },
        "127.0.0.1:0",
    )?;

    let mut client = SimfsClient::connect(server.addr(), "sedov")?;

    // Backward trajectory: steps 80 down to 41, requested in batches
    // with the non-blocking API; analysis proceeds as steps resolve.
    println!("\nbackward analysis of the shock position, steps 80 -> 41:");
    let keys: Vec<u64> = (41..=80).rev().collect();
    for chunk in keys.chunks(10) {
        let mut req = client.acquire_nb(chunk)?;
        let mut analyzed = std::collections::HashSet::new();
        while !req.done() {
            let status = client.waitsome(&mut req)?;
            assert!(status.ok(), "acquire failed: {status:?}");
            for &key in &status.ready {
                if !analyzed.insert(key) {
                    continue;
                }
                let bytes = storage.read(&driver.filename_of(key))?;
                let ds = Dataset::decode(&bytes).map_err(std::io::Error::other)?;
                let vel = ds.var("vel").and_then(|v| v.data.as_f64()).expect("vel");
                let peak = vel.iter().cloned().fold(f64::MIN, f64::max);
                if key % 10 == 0 {
                    println!("  step {key:3}: peak |v| = {peak:.4}");
                }
            }
        }
        for &key in chunk {
            client.release(key)?;
        }
    }

    let stats = server.stats();
    println!(
        "\nDV stats: {} hits, {} misses, {} restarts, {} steps produced, {} prefetch launches",
        stats.hits, stats.misses, stats.restarts, stats.produced_steps, stats.prefetch_launches
    );
    println!(
        "backward locality: each restart interval is simulated once and the\n\
         remaining 19 steps of it are served from cache ({} hits / {} accesses)",
        stats.hits,
        stats.hits + stats.misses
    );

    client.finalize()?;
    server.shutdown();
    std::fs::remove_dir_all(&dir)?;
    println!("\nblast-wave backward analysis OK");
    Ok(())
}
