//! # simkit — deterministic discrete-event simulation engine
//!
//! The SimFS evaluation (Figs. 5, 16–19 of the paper) measures behaviour
//! over hours of *simulated* wall-clock time: restart latencies of hundreds
//! of seconds, analyses spanning a thousand output steps. Running those
//! experiments against real clocks would take node-days, so — like the
//! paper's own synthetic-simulator methodology (§VI) — we execute them in
//! virtual time on a discrete-event engine.
//!
//! Design goals:
//!
//! * **Determinism.** Events scheduled for the same instant fire in
//!   scheduling order (a monotone sequence number breaks ties), and all
//!   randomness flows through explicitly seeded [`rng`] streams. Two runs
//!   with the same seed produce bit-identical event logs; the property
//!   tests assert this.
//! * **Zero I/O.** The engine knows nothing about files or sockets; the
//!   SimFS Data Virtualizer is a pure state machine and the engine merely
//!   delivers its events. The same state machine is driven by the real
//!   TCP daemon in `simfs-core::server`.
//! * **Statistics built in.** The paper reports medians with 95%
//!   confidence intervals over repeated trials; [`stats`] implements the
//!   standard nonparametric order-statistic interval so harnesses do not
//!   re-derive it.
//!
//! ```
//! use simkit::{Engine, SimTime, Dur};
//!
//! let mut engine: Engine<Vec<u64>> = Engine::new();
//! let mut log = Vec::new();
//! engine.schedule_in(Dur::from_secs(5), |en, log: &mut Vec<u64>| {
//!     log.push(en.now().as_secs());
//!     en.schedule_in(Dur::from_secs(5), |en, log: &mut Vec<u64>| {
//!         log.push(en.now().as_secs());
//!     });
//! });
//! engine.run(&mut log);
//! assert_eq!(log, vec![5, 10]);
//! ```

pub mod engine;
pub mod lockrank;
pub mod rng;
pub mod stats;
pub mod time;

pub use engine::{Engine, EventId};
pub use rng::{derive_seed, SeedSeq, SimRng};
pub use stats::{median_ci95, percentile, Summary, Tally};
pub use time::{Dur, SimTime};
