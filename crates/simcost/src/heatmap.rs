//! Fig. 15a: cost-effectiveness over the (storage cost, compute cost)
//! plane.
//!
//! Each heatmap cell reports `min(C_on-disk, C_in-situ) / C_SimFS` — a
//! ratio above 1 means SimFS is the cheapest option at that price point.
//! The paper overlays the Microsoft Azure and Piz Daint price points.

use crate::calib::{Rates, Scenario};
use crate::model::{cost_in_situ, cost_on_disk, cost_simfs};
use serde::{Deserialize, Serialize};

/// One heatmap cell.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct HeatmapPoint {
    /// Storage cost `c_s` ($/GiB/month).
    pub storage_cost: f64,
    /// Compute cost `c_c` ($/node/hour).
    pub compute_cost: f64,
    /// `min(on-disk, in-situ) / SimFS` at this price point.
    pub ratio: f64,
}

/// Sweeps the price plane. The workload (`analyses`, `resimulated_steps`)
/// is priced identically at every point; only the rates change.
#[allow(clippy::too_many_arguments)]
pub fn cost_ratio_heatmap(
    sc: &Scenario,
    months: f64,
    cache_fraction: f64,
    analyses: &[(u64, u64)],
    resimulated_steps: u64,
    storage_range: (f64, f64),
    compute_range: (f64, f64),
    resolution: usize,
) -> Vec<HeatmapPoint> {
    assert!(resolution >= 2, "need at least a 2x2 grid");
    let mut points = Vec::with_capacity(resolution * resolution);
    for si in 0..resolution {
        let cs = storage_range.0
            + (storage_range.1 - storage_range.0) * si as f64 / (resolution - 1) as f64;
        for ci in 0..resolution {
            let cc = compute_range.0
                + (compute_range.1 - compute_range.0) * ci as f64 / (resolution - 1) as f64;
            let rates = Rates {
                compute_per_node_hour: cc,
                storage_per_gib_month: cs,
            };
            let ondisk = cost_on_disk(sc, &rates, months).total();
            let insitu = cost_in_situ(sc, &rates, analyses).total();
            let simfs = cost_simfs(sc, &rates, months, cache_fraction, resimulated_steps).total();
            points.push(HeatmapPoint {
                storage_cost: cs,
                compute_cost: cc,
                ratio: ondisk.min(insitu) / simfs,
            });
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload() -> Vec<(u64, u64)> {
        (0..100).map(|i| ((i * 83) % 8000, 300)).collect()
    }

    #[test]
    fn grid_has_expected_size() {
        let sc = Scenario::cosmo_paper(8.0);
        let pts = cost_ratio_heatmap(
            &sc,
            36.0,
            0.25,
            &workload(),
            50_000,
            (0.02, 0.35),
            (0.3, 3.2),
            5,
        );
        assert_eq!(pts.len(), 25);
        assert!(pts.iter().all(|p| p.ratio.is_finite() && p.ratio > 0.0));
    }

    #[test]
    fn expensive_storage_favors_simfs_over_on_disk() {
        // Hold compute fixed; as storage cost rises, on-disk/SimFS ratio
        // must rise (SimFS stores ~25% + restarts instead of 100%).
        let sc = Scenario::cosmo_paper(8.0);
        let cheap = Rates {
            compute_per_node_hour: 2.0,
            storage_per_gib_month: 0.02,
        };
        let dear = Rates {
            compute_per_node_hour: 2.0,
            storage_per_gib_month: 0.3,
        };
        let months = 36.0;
        let v = 50_000;
        let r_cheap = cost_on_disk(&sc, &cheap, months).total()
            / cost_simfs(&sc, &cheap, months, 0.25, v).total();
        let r_dear = cost_on_disk(&sc, &dear, months).total()
            / cost_simfs(&sc, &dear, months, 0.25, v).total();
        assert!(r_dear > r_cheap);
    }

    #[test]
    fn heatmap_ratio_varies_over_plane() {
        let sc = Scenario::cosmo_paper(8.0);
        let pts = cost_ratio_heatmap(
            &sc,
            36.0,
            0.25,
            &workload(),
            50_000,
            (0.02, 0.35),
            (0.3, 3.2),
            6,
        );
        let min = pts.iter().map(|p| p.ratio).fold(f64::MAX, f64::min);
        let max = pts.iter().map(|p| p.ratio).fold(f64::MIN, f64::max);
        assert!(
            max / min > 1.2,
            "heatmap should show real variation: {min}..{max}"
        );
    }
}
