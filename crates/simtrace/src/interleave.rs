//! Overlap interleaving of multiple analyses (§V-A).
//!
//! "These analysis can overlap in time and this overlap can affect the
//! state of the SimFS cache. We express the analysis overlap as the
//! percentage of accesses that an analysis performs without being
//! interleaved with others' execution."
//!
//! Model: with overlap fraction `p`, analysis `j+1` starts once analysis
//! `j` has issued `(1 - p)` of its accesses; all currently active
//! analyses then proceed round-robin. `p = 0` is strictly sequential
//! execution; `p = 1` starts everything together, fully interleaved.

use crate::{Trace, TraceAccess};

/// Merges per-analysis step sequences into one trace with the given
/// overlap fraction (`0.0 ..= 1.0`).
///
/// # Panics
/// Panics if `overlap` is outside `[0, 1]` or not finite.
pub fn interleave_with_overlap(analyses: &[Vec<u64>], overlap: f64) -> Trace {
    assert!(
        overlap.is_finite() && (0.0..=1.0).contains(&overlap),
        "overlap fraction out of range: {overlap}"
    );
    let n = analyses.len();
    let mut cursors = vec![0usize; n]; // next index per analysis
    let mut started = vec![false; n];
    let mut accesses = Vec::with_capacity(analyses.iter().map(Vec::len).sum());

    if n == 0 {
        return Trace::default();
    }
    started[0] = true;

    loop {
        let mut progressed = false;
        for j in 0..n {
            if !started[j] || cursors[j] >= analyses[j].len() {
                continue;
            }
            accesses.push(TraceAccess {
                analysis: j as u32,
                step: analyses[j][cursors[j]],
            });
            cursors[j] += 1;
            progressed = true;

            // Start the successor once this analysis has issued
            // (1 - overlap) of its accesses.
            if j + 1 < n && !started[j + 1] {
                let threshold = ((analyses[j].len() as f64) * (1.0 - overlap)).ceil() as usize;
                if cursors[j] >= threshold.min(analyses[j].len()) {
                    started[j + 1] = true;
                }
            }
        }
        if !progressed {
            // Either everything is done, or the next unstarted analysis
            // is gated by a finished predecessor: start it.
            if let Some(j) = (0..n).find(|&j| !started[j]) {
                started[j] = true;
                continue;
            }
            break;
        }
    }
    Trace { accesses }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seqs() -> Vec<Vec<u64>> {
        vec![vec![0, 1, 2, 3], vec![10, 11, 12, 13], vec![20, 21, 22, 23]]
    }

    #[test]
    fn zero_overlap_is_sequential() {
        let t = interleave_with_overlap(&seqs(), 0.0);
        let steps: Vec<u64> = t.accesses.iter().map(|a| a.step).collect();
        assert_eq!(
            steps,
            vec![0, 1, 2, 3, 10, 11, 12, 13, 20, 21, 22, 23],
            "analyses run back-to-back"
        );
    }

    #[test]
    fn full_overlap_is_round_robin() {
        let t = interleave_with_overlap(&seqs(), 1.0);
        let steps: Vec<u64> = t.accesses.iter().map(|a| a.step).collect();
        assert_eq!(
            steps,
            vec![0, 10, 20, 1, 11, 21, 2, 12, 22, 3, 13, 23],
            "all analyses proceed together"
        );
    }

    #[test]
    fn partial_overlap_staggers_starts() {
        let t = interleave_with_overlap(&seqs(), 0.5);
        // Analysis 1 must not appear before analysis 0 issued 2 accesses.
        let first_of_1 = t
            .accesses
            .iter()
            .position(|a| a.analysis == 1)
            .expect("analysis 1 present");
        let zero_before = t.accesses[..first_of_1]
            .iter()
            .filter(|a| a.analysis == 0)
            .count();
        assert!(zero_before >= 2, "only {zero_before} accesses of 0 first");
    }

    #[test]
    fn all_accesses_preserved_in_order_per_analysis() {
        for overlap in [0.0, 0.3, 0.7, 1.0] {
            let t = interleave_with_overlap(&seqs(), overlap);
            assert_eq!(t.len(), 12, "overlap {overlap}");
            for j in 0..3u32 {
                let per: Vec<u64> = t
                    .accesses
                    .iter()
                    .filter(|a| a.analysis == j)
                    .map(|a| a.step)
                    .collect();
                assert_eq!(per, seqs()[j as usize], "analysis {j} reordered");
            }
        }
    }

    #[test]
    fn empty_and_unequal_lengths() {
        let t = interleave_with_overlap(&[], 0.5);
        assert!(t.is_empty());
        let t = interleave_with_overlap(&[vec![], vec![1, 2]], 0.0);
        let steps: Vec<u64> = t.accesses.iter().map(|a| a.step).collect();
        assert_eq!(steps, vec![1, 2]);
        let t = interleave_with_overlap(&[vec![1], vec![2, 3, 4], vec![5]], 1.0);
        assert_eq!(t.len(), 5);
    }

    #[test]
    #[should_panic(expected = "overlap fraction out of range")]
    fn bad_overlap_panics() {
        interleave_with_overlap(&[vec![1]], 1.5);
    }
}
