//! Substrate benchmarks: SDF encode/decode (the data-plane cost of
//! every produced step), simulator stepping (what a re-simulation
//! spends its `tau_sim` on), and trace generation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use simkit::SeedSeq;
use simstore::{Data, Dataset};
use simtrace::EcmwfSpec;
use simulators::{build_sim, SimKind};
use std::hint::black_box;

fn bench_sdf(c: &mut Criterion) {
    let mut ds = Dataset::new(7, 1.25);
    ds.set_attr("simulator", "heat2d");
    let field: Vec<f64> = (0..64 * 64).map(|i| (i as f64).sin()).collect();
    ds.add_var("u", vec![64, 64], Data::F64(field)).unwrap();
    let encoded = ds.encode();

    let mut group = c.benchmark_group("sdf");
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function("encode_64x64_f64", |b| b.iter(|| black_box(ds.encode())));
    group.bench_function("decode_64x64_f64", |b| {
        b.iter(|| black_box(Dataset::decode(&encoded).unwrap()))
    });
    group.finish();
}

fn bench_simulators(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_step");
    for kind in [SimKind::Synthetic, SimKind::Heat2d, SimKind::Sedov] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, &kind| {
                let mut sim = build_sim(kind, 1);
                b.iter(|| {
                    sim.step();
                    black_box(sim.timestep())
                })
            },
        );
    }
    group.finish();
}

fn bench_traces(c: &mut Criterion) {
    c.bench_function("ecmwf_trace_10k", |b| {
        let spec = EcmwfSpec::scaled(10_000);
        b.iter(|| {
            let mut rng = SeedSeq::new(5).rng(0);
            black_box(spec.generate(&mut rng).len())
        })
    });
}

criterion_group!(benches, bench_sdf, bench_simulators, bench_traces);
criterion_main!(benches);
