//! Queueing-delay distributions (§IV-C1).
//!
//! "The overheads can vary according with the system where SimFS is
//! deployed (e.g., cloud or HPC systems)" — and §IV-C1c studies
//! *non-constant* restart latencies explicitly. The distributions here
//! feed the virtual cluster and the restart-latency sweeps of
//! Figs. 17/19.

use rand::Rng;
use serde::{Deserialize, Serialize};
use simkit::{Dur, SimRng};

/// A job queueing-delay distribution.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub enum QueueModel {
    /// No queueing (dedicated reservation).
    None,
    /// Fixed delay (the paper's default model: a constant added to
    /// `alpha_sim`).
    Constant(Dur),
    /// Uniform in `[lo, hi]`.
    Uniform {
        /// Earliest possible start delay.
        lo: Dur,
        /// Latest possible start delay.
        hi: Dur,
    },
    /// Exponential with the given mean (memoryless backlog).
    Exponential {
        /// Mean delay.
        mean: Dur,
    },
    /// Log-normal with the given median and log-scale sigma — the
    /// classic heavy-tailed HPC queue-wait shape.
    LogNormal {
        /// Median delay (`exp(mu)`).
        median: Dur,
        /// Log-space standard deviation.
        sigma: f64,
    },
}

impl QueueModel {
    /// Draws one queueing delay.
    pub fn sample(&self, rng: &mut SimRng) -> Dur {
        match *self {
            QueueModel::None => Dur::ZERO,
            QueueModel::Constant(d) => d,
            QueueModel::Uniform { lo, hi } => {
                if hi <= lo {
                    lo
                } else {
                    let span = hi.as_nanos() - lo.as_nanos();
                    Dur::from_nanos(lo.as_nanos() + rng.gen_range(0..=span))
                }
            }
            QueueModel::Exponential { mean } => {
                // Inverse CDF: -mean * ln(U), U in (0,1].
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                mean.mul_f64(-u.ln())
            }
            QueueModel::LogNormal { median, sigma } => {
                // exp(mu + sigma*Z) with mu = ln(median); Z via Box-Muller.
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                median.mul_f64((sigma * z).exp())
            }
        }
    }

    /// The distribution mean, used by the DV's restart-latency estimator
    /// to seed its exponential moving average before observations exist.
    pub fn mean(&self) -> Dur {
        match *self {
            QueueModel::None => Dur::ZERO,
            QueueModel::Constant(d) => d,
            QueueModel::Uniform { lo, hi } => Dur::from_nanos((lo.as_nanos() + hi.as_nanos()) / 2),
            QueueModel::Exponential { mean } => mean,
            QueueModel::LogNormal { median, sigma } => median.mul_f64((sigma * sigma / 2.0).exp()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::SeedSeq;

    #[test]
    fn constant_is_constant() {
        let mut rng = SeedSeq::new(1).rng(0);
        let m = QueueModel::Constant(Dur::from_secs(30));
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng), Dur::from_secs(30));
        }
        assert_eq!(m.mean(), Dur::from_secs(30));
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = SeedSeq::new(2).rng(0);
        let (lo, hi) = (Dur::from_secs(10), Dur::from_secs(20));
        let m = QueueModel::Uniform { lo, hi };
        for _ in 0..200 {
            let d = m.sample(&mut rng);
            assert!(d >= lo && d <= hi);
        }
    }

    #[test]
    fn degenerate_uniform_is_lo() {
        let mut rng = SeedSeq::new(3).rng(0);
        let m = QueueModel::Uniform {
            lo: Dur::from_secs(5),
            hi: Dur::from_secs(5),
        };
        assert_eq!(m.sample(&mut rng), Dur::from_secs(5));
    }

    #[test]
    fn exponential_mean_converges() {
        let mut rng = SeedSeq::new(4).rng(0);
        let m = QueueModel::Exponential {
            mean: Dur::from_secs(100),
        };
        let n = 20_000;
        let total: f64 = (0..n).map(|_| m.sample(&mut rng).as_secs_f64()).sum();
        let mean = total / n as f64;
        assert!((mean - 100.0).abs() < 5.0, "sample mean {mean} too far from 100");
    }

    #[test]
    fn lognormal_median_converges() {
        let mut rng = SeedSeq::new(5).rng(0);
        let m = QueueModel::LogNormal {
            median: Dur::from_secs(60),
            sigma: 0.8,
        };
        let mut xs: Vec<f64> = (0..20_001).map(|_| m.sample(&mut rng).as_secs_f64()).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = xs[xs.len() / 2];
        assert!((med - 60.0).abs() < 5.0, "sample median {med} too far from 60");
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let m = QueueModel::LogNormal {
            median: Dur::from_secs(60),
            sigma: 1.0,
        };
        let a: Vec<Dur> = {
            let mut rng = SeedSeq::new(9).rng(0);
            (0..10).map(|_| m.sample(&mut rng)).collect()
        };
        let b: Vec<Dur> = {
            let mut rng = SeedSeq::new(9).rng(0);
            (0..10).map(|_| m.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn none_is_zero() {
        let mut rng = SeedSeq::new(1).rng(0);
        assert_eq!(QueueModel::None.sample(&mut rng), Dur::ZERO);
        assert_eq!(QueueModel::None.mean(), Dur::ZERO);
    }
}
