//! Wire-tag registry enforcement over `crates/core/src/wire.rs` and
//! `crates/core/tests/wire_fuzz.rs`.
//!
//! The protocol's frame tags live in `wire::tag` as named `pub const`
//! bytes (`REQ_*` for requests, `RESP_*` for responses). This check
//! pins three properties per family:
//!
//! 1. **Uniqueness** — no two tags in a family share a byte value.
//! 2. **Encode/decode symmetry** — every tag name appears in both the
//!    family's `encode_into` body and its `decode` body, so a tag
//!    cannot be writable-but-unreadable (or vice versa).
//! 3. **Fuzz coverage** — every tag name appears in
//!    `tests/wire_fuzz.rs`, which asserts the byte-level roundtrip for
//!    each variant by name.

use crate::lexer::{self, Tok, Token};
use crate::Finding;

struct TagConst {
    name: String,
    value: String,
    line: u32,
}

/// Finds the token range (exclusive of braces) of `mod tag { ... }`.
fn mod_tag_body(toks: &[Token]) -> Option<(usize, usize)> {
    for i in 0..toks.len().saturating_sub(2) {
        if lexer::is_ident(&toks[i].tok, "mod")
            && lexer::is_ident(&toks[i + 1].tok, "tag")
            && toks[i + 2].tok == Tok::Punct('{')
        {
            return Some((i + 3, lexer::skip_balanced(toks, i + 2) - 1));
        }
    }
    None
}

/// Finds the body token range of `impl <ty> { ... }`.
fn impl_body(toks: &[Token], ty: &str) -> Option<(usize, usize)> {
    let mut i = 0;
    while i + 2 < toks.len() {
        if lexer::is_ident(&toks[i].tok, "impl")
            && lexer::is_ident(&toks[i + 1].tok, ty)
            && toks[i + 2].tok == Tok::Punct('{')
        {
            return Some((i + 3, lexer::skip_balanced(toks, i + 2) - 1));
        }
        i += 1;
    }
    None
}

/// Finds the body token range of `fn <name>` inside `range`.
fn fn_body(toks: &[Token], range: (usize, usize), name: &str) -> Option<(usize, usize)> {
    let mut i = range.0;
    while i + 1 < range.1 {
        if lexer::is_ident(&toks[i].tok, "fn") && lexer::is_ident(&toks[i + 1].tok, name) {
            // Skip the signature: the body is the first `{` at the
            // signature's bracket level (params are parens, so the
            // first `{` after the name opens the body).
            let mut j = i + 2;
            while j < range.1 {
                match toks[j].tok {
                    Tok::Punct('(') => j = lexer::skip_balanced(toks, j),
                    Tok::Punct('{') => {
                        return Some((j + 1, lexer::skip_balanced(toks, j) - 1));
                    }
                    _ => j += 1,
                }
            }
            return None;
        }
        i += 1;
    }
    None
}

fn ident_in_range(toks: &[Token], range: (usize, usize), name: &str) -> bool {
    toks[range.0..range.1]
        .iter()
        .any(|t| lexer::is_ident(&t.tok, name))
}

fn collect_tags(toks: &[Token], range: (usize, usize)) -> Vec<TagConst> {
    let mut tags = Vec::new();
    let mut i = range.0;
    while i + 1 < range.1 {
        if lexer::is_ident(&toks[i].tok, "const") {
            if let Tok::Ident(name) = &toks[i + 1].tok {
                // const NAME: u8 = <num>;
                let line = toks[i + 1].line;
                let mut j = i + 2;
                let mut value = None;
                while j < range.1 && toks[j].tok != Tok::Punct(';') {
                    if toks[j].tok == Tok::Punct('=') {
                        if let Some(Tok::Num(v)) = toks.get(j + 1).map(|t| &t.tok) {
                            value = Some(v.clone());
                        }
                    }
                    j += 1;
                }
                if let Some(value) = value {
                    tags.push(TagConst {
                        name: name.clone(),
                        value,
                        line,
                    });
                }
                i = j;
                continue;
            }
        }
        i += 1;
    }
    tags
}

/// Runs the wire-tag checks. `wire_label`/`fuzz_label` are the
/// repo-relative paths used in diagnostics.
pub fn check(wire_label: &str, wire_src: &str, fuzz_label: &str, fuzz_src: &str) -> Vec<Finding> {
    let (toks, _) = lexer::lex(wire_src);
    let (fuzz_toks, _) = lexer::lex(fuzz_src);
    let mut findings = Vec::new();

    let Some(tag_body) = mod_tag_body(&toks) else {
        findings.push(Finding::new(
            "wire-tags",
            wire_label,
            1,
            "no `mod tag { ... }` found".to_string(),
        ));
        return findings;
    };
    let tags = collect_tags(&toks, tag_body);
    let fuzz_range = (0usize, fuzz_toks.len());

    for (family, prefix, ty) in [
        ("request", "REQ_", "Request"),
        ("response", "RESP_", "Response"),
    ] {
        let fam: Vec<&TagConst> = tags
            .iter()
            .filter(|t| t.name.starts_with(prefix))
            .collect();
        if fam.is_empty() {
            findings.push(Finding::new(
                "wire-tags",
                wire_label,
                toks[tag_body.0].line as usize,
                format!("no {prefix}* constants found in mod tag"),
            ));
            continue;
        }
        // 1. Uniqueness.
        for (a_i, a) in fam.iter().enumerate() {
            for b in &fam[a_i + 1..] {
                if a.value == b.value {
                    findings.push(Finding::new(
                        "wire-tags",
                        wire_label,
                        b.line as usize,
                        format!(
                            "duplicate {family} tag value {}: {} (line {}) and {}",
                            b.value, a.name, a.line, b.name
                        ),
                    ));
                }
            }
        }
        // 2. Encode/decode symmetry.
        let Some(body) = impl_body(&toks, ty) else {
            findings.push(Finding::new(
                "wire-tags",
                wire_label,
                1,
                format!("no `impl {ty}` block found"),
            ));
            continue;
        };
        for (fname, what) in [("encode_into", "encoded"), ("decode", "decoded")] {
            match fn_body(&toks, body, fname) {
                None => findings.push(Finding::new(
                    "wire-tags",
                    wire_label,
                    toks[body.0].line as usize,
                    format!("impl {ty} has no fn {fname}"),
                )),
                Some(r) => {
                    for t in &fam {
                        if !ident_in_range(&toks, r, &t.name) {
                            findings.push(Finding::new(
                                "wire-tags",
                                wire_label,
                                t.line as usize,
                                format!(
                                    "tag {} is never {what}: not referenced in {ty}::{fname}",
                                    t.name
                                ),
                            ));
                        }
                    }
                }
            }
        }
        // 3. Fuzz coverage, by name.
        for t in &fam {
            if !ident_in_range(&fuzz_toks, fuzz_range, &t.name) {
                findings.push(Finding::new(
                    "wire-tags",
                    fuzz_label,
                    t.line as usize,
                    format!(
                        "tag {} (wire.rs:{}) is not exercised by name in the wire fuzz tests",
                        t.name, t.line
                    ),
                ));
            }
        }
    }
    findings
}
