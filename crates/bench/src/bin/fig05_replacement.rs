//! Fig. 5: cache replacement schemes vs access patterns.
//!
//! `cargo run -p simfs-bench --bin fig05_replacement [--full] [--reps N]`
//!
//! `--full` runs the paper-scale configuration: 100 repetitions and the
//! full-length (659,989-access) ECMWF-like trace.

use simfs_bench::{fig5, RunOpts};

fn main() {
    let opts = RunOpts::from_args();
    let cfg = fig5::Fig5Config::paper(opts.full);
    let cells = fig5::run(&cfg, &opts);
    let table = fig5::table(&cells);
    table.print();
    let path = table
        .write_csv(&opts.out_dir, "fig05_replacement")
        .expect("write CSV");
    println!("\nCSV: {}", path.display());

    // The paper's two qualitative findings, checked on the spot.
    let lirs_bwd = fig5::cell(&cells, simtrace::Pattern::Backward, "LIRS");
    let lru_bwd = fig5::cell(&cells, simtrace::Pattern::Backward, "LRU");
    println!(
        "\nLIRS vs LRU on backward scans: {:.0} vs {:.0} simulated steps{}",
        lirs_bwd.steps_median,
        lru_bwd.steps_median,
        if lirs_bwd.steps_median > lru_bwd.steps_median {
            "  (LIRS worst on backward, as in the paper)"
        } else {
            "  (!! expected LIRS to be worse)"
        }
    );
    let dcl_rand = fig5::cell(&cells, simtrace::Pattern::Random, "DCL");
    let lru_rand = fig5::cell(&cells, simtrace::Pattern::Random, "LRU");
    println!(
        "DCL vs LRU on random accesses: {:.0} vs {:.0} simulated steps{}",
        dcl_rand.steps_median,
        lru_rand.steps_median,
        if dcl_rand.steps_median <= lru_rand.steps_median {
            "  (cost-aware wins, as in the paper)"
        } else {
            "  (!! expected DCL to win)"
        }
    );
}
