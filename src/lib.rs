//! # SimFS — a simulation data virtualizing file system interface
//!
//! Reproduction of Di Girolamo, Schmid, Schulthess, Hoefler,
//! *"SimFS: A Simulation Data Virtualizing File System Interface"*,
//! IPDPS 2019 (arXiv:1902.03154).
//!
//! SimFS lets analysis applications see a simulation's **complete**
//! output as files while only a subset is actually stored: accesses to
//! missing output steps transparently restart the simulation from the
//! nearest checkpoint and re-create the data on demand, trading storage
//! cost for compute cost. A cost-aware cache (DCL by default) decides
//! which steps stay on disk; prefetch agents overlap re-simulation with
//! analysis.
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`core`] (`simfs-core`) | Data Virtualizer state machine, prefetch agents, drivers, client API, TCP daemon |
//! | [`simcache`] | Replacement policies: LRU, LIRS, ARC, BCL, DCL |
//! | [`simstore`] | SDF array file format, storage areas, checksums |
//! | [`simbatch`] | Cluster model, queueing delays, process launcher |
//! | [`simtrace`] | Access-pattern generators (incl. ECMWF-like) |
//! | [`simulators`] | Restartable simulators: synthetic, Heat2d, Sedov |
//! | [`simcost`] | §V cost models (on-disk / in-situ / SimFS) |
//! | [`simkit`] | Deterministic discrete-event engine + statistics |
//!
//! ## Quickstart
//!
//! ```no_run
//! use simfs::prelude::*;
//! use std::sync::Arc;
//! use std::collections::HashMap;
//!
//! // A context: one output step per timestep, restart every 4, 64 steps.
//! let steps = StepMath::new(1, 4, 64);
//! let ctx = ContextCfg::new("demo", steps, 1024, 64 * 1024);
//! let storage = StorageArea::create("/tmp/simfs-demo", u64::MAX).unwrap();
//! let driver = Arc::new(PatternDriver::new("out-", ".sdf", 6));
//! # let launcher: Arc<dyn simbatch::JobLauncher> = unimplemented!();
//! let server = DvServer::start(ServerConfig {
//!     ctx, driver, storage, launcher, checksums: HashMap::new(),
//!     dv_shards: 0, cluster: ClusterMember::SOLO,
//!     durability: DurabilityCfg::default(),
//! }, "127.0.0.1:0").unwrap();
//!
//! // An analysis: acquire a step that does not exist yet — SimFS
//! // re-simulates it on demand.
//! let mut client = SimfsClient::connect(server.addr(), "demo").unwrap();
//! let status = client.acquire(&[42]).unwrap();
//! assert!(status.ok());
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and
//! `crates/bench` for the harnesses regenerating every table and figure
//! of the paper.

pub use simbatch;
pub use simcache;
pub use simcost;
pub use simfs_core as core;
pub use simkit;
pub use simstore;
pub use simtrace;
pub use simulators;

pub mod launchers;
pub mod setup;
pub mod spec;

/// The items most applications need.
pub mod prelude {
    pub use simbatch::{JobLauncher, ParallelismMap, ProcessLauncher, QueueModel};
    pub use simfs_core::client::{DvCluster, SimfsClient, SimfsStatus};
    pub use simfs_core::driver::{PatternDriver, SimDriver};
    pub use simfs_core::dv::ClusterMember;
    pub use simfs_core::intercept::VirtualFs;
    pub use simfs_core::model::{ContextCfg, StepMath};
    pub use simfs_core::server::{DurabilityCfg, DvServer, ServerConfig, ThreadSimLauncher};
    pub use simkit::{Dur, SimTime};
    pub use simstore::{Dataset, StorageArea};
}
