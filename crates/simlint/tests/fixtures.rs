//! simlint self-tests: each seeded fixture violation must be caught,
//! clean shapes must stay clean, and a full run over the real tree
//! must come back empty (the CI gate in test form).

use std::path::{Path, PathBuf};

use simlint::{lockcheck, registry, statscheck, unsafecheck, wirecheck};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/simlint has a workspace root two levels up")
        .to_path_buf()
}

/// The real registry, so fixtures exercise the production rules.
fn real_registry() -> registry::Registry {
    let src = std::fs::read_to_string(repo_root().join("crates/core/LOCKS.md")).unwrap();
    let (reg, findings) = registry::parse(&src, "crates/core/LOCKS.md");
    assert!(findings.is_empty(), "registry must parse clean: {findings:?}");
    reg
}

/// Fixtures are scanned as if they were server.rs so the production
/// matcher set applies.
const AS_SERVER: &str = "crates/core/src/server.rs";

#[test]
fn fixture_out_of_order_lock_is_caught() {
    let reg = real_registry();
    let src = include_str!("../fixtures/out_of_order_lock.rs");
    let findings = lockcheck::check_source(AS_SERVER, src, &reg);
    let order: Vec<_> = findings.iter().filter(|f| f.check == "lock-order").collect();
    assert_eq!(
        order.len(),
        2,
        "expected the wal→shard climb and the ledger=leases equal-rank nest: {findings:?}"
    );
    assert!(order[0].message.contains("dv-shard") && order[0].message.contains("wal"));
    assert!(order[1].message.contains("leases") && order[1].message.contains("ledger"));
    // The two `fine_*` shapes (descending chain, drop-then-acquire)
    // must not add anything.
    assert_eq!(findings.len(), 2, "{findings:?}");
}

#[test]
fn fixture_blocking_under_lock_is_caught() {
    let reg = real_registry();
    let src = include_str!("../fixtures/blocking_under_lock.rs");
    let findings = lockcheck::check_source(AS_SERVER, src, &reg);
    let blocking: Vec<_> = findings
        .iter()
        .filter(|f| f.check == "blocking-under-lock")
        .collect();
    assert_eq!(
        blocking.len(),
        2,
        "expected `launch` under ledger and `write_all` under a shard temp: {findings:?}"
    );
    assert!(blocking[0].message.contains("launch") && blocking[0].message.contains("ledger"));
    assert!(blocking[1].message.contains("write_all") && blocking[1].message.contains("dv-shard"));
    // Blocking under wal (blocking: yes) and effects-after-release are
    // clean.
    assert_eq!(findings.len(), 2, "{findings:?}");
}

#[test]
fn fixture_duplicate_wire_tag_is_caught() {
    let wire = include_str!("../fixtures/dup_wire_tag.rs");
    // Fuzz side names every tag, so only the duplicate fires.
    let fuzz = "fn t() { use tag::{REQ_HELLO, REQ_PIN, REQ_UNPIN, RESP_OK}; }";
    let findings = wirecheck::check("wire.rs", wire, "fuzz.rs", fuzz);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0].message.contains("duplicate"));
    assert!(findings[0].message.contains("REQ_PIN") && findings[0].message.contains("REQ_UNPIN"));
}

#[test]
fn fixture_unfuzzed_tag_is_caught() {
    let wire = include_str!("../fixtures/unfuzzed_tag.rs");
    // REQ_PIN is encoded and decoded but missing from the fuzz tests.
    let fuzz = "fn t() { use tag::{REQ_HELLO, RESP_OK}; }";
    let findings = wirecheck::check("wire.rs", wire, "fuzz.rs", fuzz);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0].message.contains("REQ_PIN"));
    assert!(findings[0].message.contains("not exercised"));
}

#[test]
fn fixture_missing_accumulate_field_is_caught() {
    let dv = include_str!("../fixtures/missing_accumulate_field.rs");
    // Bench emits all three fields, so only the accumulate side fires.
    let bench = r#"fn emit() { println!("{{\"hits\":{},\"misses\":{},\"evictions\":{}}}", h, m, e); }"#;
    let findings = statscheck::check("dv.rs", dv, "bench.rs", bench);
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(findings.iter().any(|f| f.message.contains("`..`")));
    assert!(findings
        .iter()
        .any(|f| f.message.contains("`evictions`") && f.message.contains("accumulate")));
}

#[test]
fn fixture_bare_unsafe_is_caught() {
    let src = include_str!("../fixtures/bare_unsafe.rs");
    let findings = unsafecheck::check_source("sys.rs", src);
    assert_eq!(findings.len(), 1, "justified block is clean: {findings:?}");
    assert!(findings[0].message.contains("SAFETY"));
}

/// Seeding a violation into the *real* server.rs source must be
/// caught — proof the production scan path is not vacuous (a lexer or
/// matcher regression that stopped tracking acquisitions would pass
/// the clean-tree test below by accident, but fail here).
#[test]
fn seeded_violation_in_real_server_source_is_caught() {
    let reg = real_registry();
    let real = std::fs::read_to_string(repo_root().join("crates/core/src/server.rs")).unwrap();
    assert!(
        lockcheck::check_source(AS_SERVER, &real, &reg).is_empty(),
        "real server.rs must be clean before seeding"
    );
    let seeded = format!(
        "{real}\nfn simlint_seeded(rt: &Runtime) {{\n    let mut w = rt.wal.lock();\n    let core = rt.shards[0].lock();\n}}\n"
    );
    let findings = lockcheck::check_source(AS_SERVER, &seeded, &reg);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].check, "lock-order");
    assert!(findings[0].message.contains("dv-shard") && findings[0].message.contains("wal"));
}

/// A registry/runtime drift (LOCKS.md says one level, lockrank.rs
/// another) must be caught.
#[test]
fn lockrank_drift_is_caught() {
    let reg = real_registry();
    let real = std::fs::read_to_string(repo_root().join("crates/simkit/src/lockrank.rs")).unwrap();
    assert!(
        registry::check_lockrank_consistency(&reg, &real, "LOCKS.md").is_empty(),
        "real lockrank.rs must agree with the registry"
    );
    let drifted = real.replace(
        "pub const WAL: Rank = Rank { level: 20",
        "pub const WAL: Rank = Rank { level: 45",
    );
    assert_ne!(real, drifted);
    let findings = registry::check_lockrank_consistency(&reg, &drifted, "LOCKS.md");
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0].message.contains("WAL"));
}

/// The CI gate in test form: the tree this crate ships in is clean.
#[test]
fn clean_tree_self_run() {
    let report = simlint::run_all(&repo_root());
    assert!(
        report.findings.is_empty(),
        "simlint findings on the real tree:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Sanity: the run actually visited the tree (registry files, wire,
    // stats pair, and every crate src file).
    assert!(report.files_scanned > 40, "only {} files", report.files_scanned);
}
