//! The bit-reproducibility checksum database (§III-C).
//!
//! "The simulation context keeps a map from filenames to checksums that
//! can be updated through a command line utility at the time when the
//! first simulation is run." Here the map is keyed by output-step key
//! and persisted as a plain text file (`<key> <checksum-hex>` per line)
//! next to the storage area, so it is human-inspectable and
//! merge-friendly.

use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::Path;

/// Conventional file name inside a storage area.
pub const DB_FILENAME: &str = "checksums.db";

/// Writes the checksum map (sorted by key for stable diffs).
pub fn save(path: &Path, db: &HashMap<u64, u64>) -> io::Result<()> {
    let mut entries: Vec<(&u64, &u64)> = db.iter().collect();
    entries.sort();
    let mut out = String::with_capacity(entries.len() * 26);
    for (key, sum) in entries {
        out.push_str(&format!("{key} {sum:016x}\n"));
    }
    fs::write(path, out)
}

/// Reads a checksum map written by [`save`]. Blank lines and `#`
/// comments are ignored.
pub fn load(path: &Path) -> io::Result<HashMap<u64, u64>> {
    let text = fs::read_to_string(path)?;
    let mut db = HashMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, sum) = line.split_once(' ').ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("checksum db line {}: missing separator", lineno + 1),
            )
        })?;
        let key: u64 = key.parse().map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("checksum db line {}: {e}", lineno + 1),
            )
        })?;
        let sum = u64::from_str_radix(sum.trim(), 16).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("checksum db line {}: {e}", lineno + 1),
            )
        })?;
        db.insert(key, sum);
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let dir = std::env::temp_dir().join(format!("ckdb-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(DB_FILENAME);
        let mut db = HashMap::new();
        db.insert(1, 0xdeadbeef);
        db.insert(99, u64::MAX);
        save(&path, &db).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back, db);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let dir = std::env::temp_dir().join(format!("ckdb2-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(DB_FILENAME);
        fs::write(&path, "# header\n\n5 00000000000000ff\n").unwrap();
        let db = load(&path).unwrap();
        assert_eq!(db.get(&5), Some(&0xff));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbage_is_an_error() {
        let dir = std::env::temp_dir().join(format!("ckdb3-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(DB_FILENAME);
        fs::write(&path, "not-a-key ff\n").unwrap();
        assert!(load(&path).is_err());
        fs::write(&path, "5\n").unwrap();
        assert!(load(&path).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
