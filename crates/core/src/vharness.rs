//! Virtual-time experiment harness: the DV driven by `simkit`'s engine.
//!
//! Reproduces the timing experiments (Figs. 16–19): an analysis issues
//! (possibly strided) accesses with think time `tau_cli`; misses block
//! it until the DV's re-simulations produce the step. Launch actions
//! become scheduled production streams — queueing delay plus restart
//! latency `alpha_sim`, then one `FileProduced` every `tau_sim` — and
//! kill actions cancel them. A [`simbatch::Cluster`] tracks node usage
//! for the figure annotations.
//!
//! Everything is deterministic given the experiment seed.
//!
//! [`FaultedClusterExperiment`] extends the harness into a scripted
//! fault-injection rig: a K-member virtual DV cluster (one
//! [`DataVirtualizer`] per member over one shared virtual storage set,
//! each journaling pins/leases to an in-memory WAL) driven by a
//! [`FaultPlan`] — crash member k at virtual time t, restart it with or
//! without `--recover`, drop the analysis connection, delay a member (a
//! partition is `DelayMember` over a subset). Faults fire at exact
//! virtual times, so every crash/recovery interleaving is replayable
//! bit-for-bit and can be asserted equivalent to a faultless run.
//!
//! Besides whole-member faults, the plan can script *production*
//! faults against the DV's supervision tier: [`Fault::FailSim`]
//! crashes sim attempts (transient or persistent), [`Fault::HangSim`]
//! wedges a started sim so only the hang watchdog can reclaim it, and
//! [`Fault::CorruptOutput`] feeds the integrity gate a bad step. The
//! harness plays the daemon reaper's role by scheduling a wake-up at
//! each member DV's [`next_due`](DataVirtualizer::next_due) deadline,
//! so backoff retries, watchdog kills, and quarantine expiries all
//! happen at exact virtual times.

use crate::client::successor_taker;
use crate::dv::{
    ClusterMember, DataVirtualizer, DvAction, DvEvent, DvRouter, DvStats, FailCode, ShardedDv,
    SimId,
};
use crate::model::ContextCfg;
use simbatch::{Cluster, JobId, QueueModel};
use simkit::{Dur, Engine, SeedSeq, SimRng, SimTime};
use simstore::walog::{WalRecord, WalState};
use std::collections::{HashMap, HashSet, VecDeque};

/// One virtual-time experiment configuration.
#[derive(Clone)]
pub struct VirtualExperiment {
    /// Context (cadences, cache, policy, `s_max`, prefetch flag).
    pub cfg: ContextCfg,
    /// True restart latency of the simulator (excluding queueing).
    pub alpha_sim: Dur,
    /// True inter-production time of the simulator.
    pub tau_sim: Dur,
    /// Additional job queueing delay distribution.
    pub queue: QueueModel,
    /// Nodes per re-simulation (cluster accounting, figure annotations).
    pub nodes_per_sim: u32,
    /// Experiment seed.
    pub seed: u64,
}

/// Result of one analysis run.
#[derive(Clone, Debug)]
pub struct AnalysisResult {
    /// Wall-clock (virtual) time from first access to last consumption.
    pub completion: Dur,
    /// DV statistics at the end of the run.
    pub stats: DvStats,
    /// Peak concurrent node usage.
    pub peak_nodes: u32,
    /// Peak concurrent re-simulations.
    pub peak_sims: u32,
}

const ANALYSIS_CLIENT: u64 = 1;

struct RunningSim {
    keys_end: u64,
    next_key: u64,
    killed: bool,
}

struct World {
    dv: DataVirtualizer,
    cluster: Cluster,
    sims: HashMap<SimId, RunningSim>,
    rng: SimRng,
    exp: ExpParams,
    accesses: Vec<u64>,
    /// Next access index to issue.
    cursor: usize,
    /// Key the analysis is currently blocked on.
    waiting_for: Option<u64>,
    /// Previously consumed key, released at the next access.
    last_consumed: Option<u64>,
    done_at: Option<SimTime>,
    peak_sims: u32,
    failed: Vec<u64>,
}

#[derive(Clone, Copy)]
struct ExpParams {
    alpha_sim: Dur,
    tau_sim: Dur,
    tau_cli: Dur,
    queue: QueueModel,
    nodes_per_sim: u32,
    output_bytes: u64,
}

impl VirtualExperiment {
    /// Runs a single analysis over `accesses` with think time `tau_cli`;
    /// returns completion time and statistics.
    ///
    /// # Panics
    /// Panics if the run deadlocks (an access never gets served) — that
    /// would be a DV logic bug, not an experiment outcome.
    pub fn run_analysis(&self, accesses: &[u64], tau_cli: Dur) -> AnalysisResult {
        assert!(!accesses.is_empty(), "empty analysis");
        let mut dv = DataVirtualizer::new(self.cfg.clone());
        // The context configuration carries performance priors (§IV-A);
        // seed the estimators like a deployed SimFS would be.
        dv.seed_estimates(self.alpha_sim + self.queue.mean(), self.tau_sim);
        let cluster_nodes = (self.cfg.smax * self.nodes_per_sim).max(self.nodes_per_sim);
        let mut world = World {
            dv,
            cluster: Cluster::new(cluster_nodes),
            sims: HashMap::new(),
            rng: SeedSeq::new(self.seed).rng(0),
            exp: ExpParams {
                alpha_sim: self.alpha_sim,
                tau_sim: self.tau_sim,
                tau_cli,
                queue: self.queue,
                nodes_per_sim: self.nodes_per_sim,
                output_bytes: self.cfg.output_bytes,
            },
            accesses: accesses.to_vec(),
            cursor: 0,
            waiting_for: None,
            last_consumed: None,
            done_at: None,
            peak_sims: 0,
            failed: Vec::new(),
        };

        let mut engine: Engine<World> = Engine::new();
        engine.schedule_at(SimTime::ZERO, |en, w: &mut World| next_access(en, w));
        engine.run(&mut world);

        let done_at = world.done_at.unwrap_or_else(|| {
            panic!(
                "analysis deadlocked at access {}/{} (key {:?}, failed: {:?})",
                world.cursor,
                world.accesses.len(),
                world.waiting_for,
                world.failed
            )
        });
        AnalysisResult {
            completion: done_at.saturating_since(SimTime::ZERO),
            stats: world.dv.stats().clone(),
            peak_nodes: world.cluster.peak_used(),
            peak_sims: world.peak_sims,
        }
    }

    /// `T_single`: the time a single simulation serving all `m` accesses
    /// would take — `alpha_sim + m·tau_sim` (§VI). The in-situ bound the
    /// figures compare against.
    pub fn t_single(&self, m: u64) -> Dur {
        self.alpha_sim + self.queue.mean() + self.tau_sim.saturating_mul(m)
    }

    /// `T_lower`: restart latency plus serving all `m` steps with
    /// `s_max` simulations in parallel (§VI).
    pub fn t_lower(&self, m: u64) -> Dur {
        self.alpha_sim + self.queue.mean() + self.tau_sim.saturating_mul(m).div_u64(self.cfg.smax as u64)
    }

    /// Approximate prefetching warm-up time `T_pre ≈ 2·alpha + n·tau_sim`
    /// (§IV-C1a) where `n` is one restart interval.
    pub fn t_pre(&self) -> Dur {
        let alpha = self.alpha_sim + self.queue.mean();
        let b = self.cfg.steps.outputs_per_interval();
        alpha.saturating_mul(2) + self.tau_sim.saturating_mul(b)
    }
}

/// Issues the next analysis access (releasing the previous key).
fn next_access(en: &mut Engine<World>, w: &mut World) {
    if let Some(prev) = w.last_consumed.take() {
        let actions = w.dv.handle(en.now(), DvEvent::Release {
            client: ANALYSIS_CLIENT,
            key: prev,
        });
        apply_actions(en, w, actions);
    }
    if w.cursor >= w.accesses.len() {
        w.done_at = Some(en.now());
        return;
    }
    let key = w.accesses[w.cursor];
    w.cursor += 1;
    let actions = w.dv.handle(en.now(), DvEvent::Acquire {
        client: ANALYSIS_CLIENT,
        key,
    });
    let mut ready = false;
    let mut failed = false;
    for a in &actions {
        match a {
            DvAction::NotifyReady {
                client: ANALYSIS_CLIENT,
                key: k,
            } if *k == key => ready = true,
            DvAction::NotifyFailed { key: k, .. } if *k == key => failed = true,
            _ => {}
        }
    }
    apply_actions(en, w, actions);
    if failed {
        w.failed.push(key);
        // Skip the unservable key (out-of-timeline accesses in clamped
        // traces) and move on.
        en.schedule_in(Dur::ZERO, next_access);
    } else if ready {
        consume(en, w, key);
    } else {
        w.waiting_for = Some(key);
    }
}

/// The analysis consumes `key` for `tau_cli`, then issues the next
/// access.
fn consume(en: &mut Engine<World>, w: &mut World, key: u64) {
    w.last_consumed = Some(key);
    en.schedule_in(w.exp.tau_cli, next_access);
}

/// Applies DV actions to the virtual world.
fn apply_actions(en: &mut Engine<World>, w: &mut World, actions: Vec<DvAction>) {
    for action in actions {
        match action {
            DvAction::NotifyReady { client, key } => {
                debug_assert_eq!(client, ANALYSIS_CLIENT);
                if w.waiting_for == Some(key) {
                    w.waiting_for = None;
                    consume(en, w, key);
                }
            }
            DvAction::NotifyFailed { key, .. } => {
                if w.waiting_for == Some(key) {
                    w.waiting_for = None;
                    w.failed.push(key);
                    en.schedule_in(Dur::ZERO, next_access);
                }
            }
            DvAction::Launch { sim, keys, .. } => {
                w.sims.insert(
                    sim,
                    RunningSim {
                        keys_end: *keys.end(),
                        next_key: *keys.start(),
                        killed: false,
                    },
                );
                w.peak_sims = w.peak_sims.max(w.dv.active_sims() as u32);
                let events = w.cluster.submit(JobId(sim), w.exp.nodes_per_sim);
                debug_assert!(!events.is_empty(), "harness cluster never queues");
                let delay = w.exp.queue.sample(&mut w.rng) + w.exp.alpha_sim;
                en.schedule_in(delay, move |en, w: &mut World| sim_started(en, w, sim));
            }
            DvAction::Kill { sim } => {
                if let Some(s) = w.sims.get_mut(&sim) {
                    s.killed = true;
                }
                w.cluster.cancel(JobId(sim));
            }
            DvAction::Evict { .. } => {
                // Virtual storage: nothing to delete.
            }
        }
    }
}

fn sim_started(en: &mut Engine<World>, w: &mut World, sim: SimId) {
    if w.sims.get(&sim).is_none_or(|s| s.killed) {
        return;
    }
    let actions = w.dv.handle(en.now(), DvEvent::SimStarted { sim });
    apply_actions(en, w, actions);
    en.schedule_in(w.exp.tau_sim, move |en, w: &mut World| produce(en, w, sim));
}

fn produce(en: &mut Engine<World>, w: &mut World, sim: SimId) {
    let Some(s) = w.sims.get_mut(&sim) else {
        return;
    };
    if s.killed {
        w.sims.remove(&sim);
        return;
    }
    let key = s.next_key;
    s.next_key += 1;
    let finished = s.next_key > s.keys_end;
    let actions = w.dv.handle(en.now(), DvEvent::FileProduced {
        sim,
        key,
        size: w.exp.output_bytes,
    });
    apply_actions(en, w, actions);
    if finished {
        w.sims.remove(&sim);
        w.cluster.finish(JobId(sim));
        let actions = w.dv.handle(en.now(), DvEvent::SimFinished { sim });
        apply_actions(en, w, actions);
    } else {
        en.schedule_in(w.exp.tau_sim, move |en, w: &mut World| produce(en, w, sim));
    }
}

// ---------------------------------------------------------------------------
// Scripted fault injection over a virtual DV cluster
// ---------------------------------------------------------------------------

/// One scripted fault, fired at an exact virtual time.
#[derive(Clone, Copy, Debug)]
pub enum Fault {
    /// kill -9 member `member` at `at`: its in-memory DV state (pins,
    /// waiters, running sims) vanishes; its WAL journal and the steps
    /// already materialized in the shared storage survive.
    CrashMember {
        /// Member index.
        member: usize,
        /// Virtual time of the crash.
        at: Dur,
    },
    /// Restart a crashed member at `at`. With `recover`, it replays
    /// its WAL journal: re-primes owned resident steps, restores
    /// pins under the prior client ids, and grants each prior client
    /// a recovery lease. Without, it comes back empty-handed (pins
    /// must be re-acquired).
    RestartMember {
        /// Member index.
        member: usize,
        /// Virtual time of the restart.
        at: Dur,
        /// Replay the WAL journal (the `--recover` flag).
        recover: bool,
    },
    /// Drop the analysis connection to a *live* member at `at`: the
    /// daemon maps the hangup to `ClientGone` (pins released); the
    /// client re-handshakes on next use and, seeing the same epoch,
    /// knows its pins are gone.
    DropConnection {
        /// Member index.
        member: usize,
        /// Virtual time of the drop.
        at: Dur,
    },
    /// Member unreachable during `[from, from + lasting)`: requests to
    /// it stall client-side and notifications defer until it heals;
    /// the connection itself survives (contrast [`Fault::DropConnection`]).
    /// A network partition is this fault over a member subset.
    DelayMember {
        /// Member index.
        member: usize,
        /// Virtual time the delay starts.
        from: Dur,
        /// How long the member stays unreachable.
        lasting: Dur,
    },
    /// From `at` on, sim attempts at `member` crash right after being
    /// scheduled (`SimFailed` before producing anything). Transient
    /// crashes exactly one attempt — the supervised backoff retry then
    /// succeeds; persistent crashes every attempt, marching the
    /// interval through its budget into poison quarantine.
    FailSim {
        /// Member index.
        member: usize,
        /// Virtual time the fault arms.
        at: Dur,
        /// Crash every attempt (vs exactly one).
        persistent: bool,
    },
    /// The next sim started at `member` after `at` hangs: it reports
    /// `SimStarted` and then never produces. Only the member's hang
    /// watchdog ([`DataVirtualizer::tick`]) can reclaim its slot and
    /// its waiters.
    HangSim {
        /// Member index.
        member: usize,
        /// Virtual time the fault arms.
        at: Dur,
    },
    /// The next step produced at `member` after `at` is corrupt: the
    /// integrity gate rejects it (`OutputCorrupt`) before residency,
    /// the producing sim is killed, and the retry machinery takes
    /// over.
    CorruptOutput {
        /// Member index.
        member: usize,
        /// Virtual time the fault arms.
        at: Dur,
    },
}

/// A deterministic fault schedule.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// The faults, fired in virtual-time order regardless of order here.
    pub faults: Vec<Fault>,
}

/// Outcome of one faulted cluster run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultReport {
    /// Keys served (ready), in service order. Retried accesses appear
    /// once — service, not attempts.
    pub served: Vec<u64>,
    /// Keys that failed (out-of-timeline, poisoned, ...), in failure
    /// order.
    pub failed: Vec<u64>,
    /// Machine-readable failure codes, aligned with `failed`.
    pub failed_codes: Vec<FailCode>,
    /// Virtual time from first access to last consumption.
    pub completion: Dur,
    /// Client re-handshakes across all members.
    pub reconnects: u64,
    /// Pins transferred to the reconnecting client via re-assertion.
    pub pins_reasserted: u64,
    /// Pins restored from WAL journals across all member recoveries.
    pub pins_recovered: u64,
    /// WAL records replayed across all member recoveries.
    pub wal_replayed: u64,
    /// Recovery leases that expired before their client re-asserted.
    pub leases_expired: u64,
    /// Keys acquired through tagged takeover requests at a taker —
    /// re-homed crash-time pins plus accesses rerouted while the home
    /// member was down.
    pub takeovers: u64,
    /// Foreign intervals a taker primed from the shared storage.
    pub takeover_intervals_primed: u64,
    /// Takeover pins drained back to their restored home member.
    pub pins_handed_back: u64,
    /// Final takeover epoch (bumped once per down-detection and once
    /// per revival — a full crash/hand-back cycle adds two).
    pub takeover_epoch: u64,
    /// Per-member WAL journals at the end of the run, for invariant
    /// assertions (exactly-once `ClientGone`, no leaked pins).
    pub journals: Vec<Vec<WalRecord>>,
    /// Supervision and production counters summed over the members
    /// still alive at the end of the run (a crashed member's counters
    /// die with it, exactly as in the real daemon).
    pub stats: DvStats,
    /// Supervision state left behind once every event has drained:
    /// running sims + queued launches + pending-production claims +
    /// un-notified waiters, summed over live members. Any non-zero
    /// value is a leak — faults must never strand an `s_max` slot, a
    /// claim, or a waiter.
    pub residue: u64,
}

/// A K-member virtual cluster with scripted faults: the DES analogue
/// of the real 3-daemon crash tests, minus wall-clock flakiness.
#[derive(Clone)]
pub struct FaultedClusterExperiment {
    /// Context (cadences, cache, policy, `s_max`). The cache budget is
    /// split across members exactly as the real cluster splits it.
    pub cfg: ContextCfg,
    /// Cluster size K (member k owns intervals with `i % K == k`).
    pub members: u32,
    /// True restart latency of the simulator.
    pub alpha_sim: Dur,
    /// True inter-production time of the simulator.
    pub tau_sim: Dur,
    /// Additional job queueing delay distribution.
    pub queue: QueueModel,
    /// How long a recovered pin waits for its client to re-assert.
    pub lease_timeout: Dur,
    /// The analysis' pinned working set: how many consumed steps stay
    /// pinned before the oldest is released. A window > 1 is what makes
    /// crash-time pins worth re-asserting after recovery.
    pub pin_window: usize,
    /// Interval failover (mirrors `DvCluster::set_failover`): when a
    /// member is crashed (not merely delayed), its intervals are served
    /// by the successor-rule taker until the member restarts, at which
    /// point the parked pins are handed back. Off by default so
    /// non-failover plans replay exactly as before.
    pub failover: bool,
    /// Experiment seed.
    pub seed: u64,
}

/// How long the virtual client waits between retries against an
/// unreachable member (its reconnect backoff, virtualized).
const VRETRY: Dur = Dur::from_millis(100);

struct VMember {
    /// `None` while crashed.
    dv: Option<DataVirtualizer>,
    /// Durable pin/lease journal — the in-memory stand-in for the
    /// real daemon's WAL file. Survives crashes.
    journal: Vec<WalRecord>,
    /// Recovery epoch (bumped on every restart).
    epoch: u64,
    /// Restart generation: stale scheduled events (sims launched by a
    /// previous incarnation) check this and die.
    incarnation: u64,
    /// The analysis' current session client id on this member.
    client: u64,
    /// The epoch the session handshook under (differs from `epoch`
    /// after a restart — the reconnect-time re-assertion signal).
    connected_epoch: u64,
    /// key → pin count the session holds on this member (client view).
    held: HashMap<u64, u32>,
    /// The session must re-handshake before the next request.
    needs_reconnect: bool,
    /// Recovery leases: prior client → expiry deadline.
    leases: HashMap<u64, SimTime>,
    /// Unreachable until this time ([`Fault::DelayMember`]).
    delayed_until: SimTime,
    /// Armed [`Fault::FailSim`] crashes left (`u64::MAX` = persistent).
    fail_next: u64,
    /// Armed [`Fault::HangSim`] hangs left.
    hang_next: u64,
    /// Armed [`Fault::CorruptOutput`] corruptions left.
    corrupt_next: u64,
    /// Earliest supervision wake-up already scheduled (dedups the
    /// reaper-analogue events; `None` = nothing armed).
    tick_at: Option<SimTime>,
}

struct VSim {
    keys_end: u64,
    next_key: u64,
    killed: bool,
}

struct FaultWorld {
    members: Vec<VMember>,
    /// Member-of-key map (interval % K).
    router: DvRouter,
    /// The shared storage area: key → size of every materialized step.
    /// Survives member crashes; evictions delete from it.
    storage: HashMap<u64, u64>,
    /// Running sims keyed by (member, incarnation, sim id).
    sims: HashMap<(usize, u64, SimId), VSim>,
    rng: SimRng,
    exp: ExpParams,
    cfg: ContextCfg,
    cluster_size: u32,
    lease_timeout: Dur,
    accesses: Vec<u64>,
    cursor: usize,
    /// `(member, client, key)` the analysis is blocked on.
    waiting_for: Option<(usize, u64, u64)>,
    /// Consumed keys still pinned, oldest first.
    release_queue: VecDeque<u64>,
    pin_window: usize,
    done_at: Option<SimTime>,
    next_client: u64,
    served: Vec<u64>,
    failed: Vec<u64>,
    failed_codes: Vec<FailCode>,
    reconnects: u64,
    pins_reasserted: u64,
    pins_recovered: u64,
    wal_replayed: u64,
    leases_expired: u64,
    /// Interval failover enabled (opt-in).
    failover: bool,
    /// Members the virtual client has declared down.
    down: Vec<bool>,
    /// key → (taker, pin count) for pins parked on a taker.
    taken_over: HashMap<u64, (usize, u32)>,
    /// Foreign intervals each member has primed as a taker. Cleared
    /// when that member crashes (its primed cache dies with it).
    taken_intervals: Vec<HashSet<u64>>,
    takeover_epoch: u64,
    takeovers: u64,
    takeover_intervals_primed: u64,
    pins_handed_back: u64,
}

impl FaultedClusterExperiment {
    /// Runs a single analysis over `accesses` with think time `tau_cli`
    /// while `plan`'s faults fire at their scheduled virtual times.
    ///
    /// # Panics
    /// Panics if the run deadlocks — e.g. a member is crashed and never
    /// restarted while un-served accesses still route to it. That is a
    /// plan bug (or a DV recovery bug), not an experiment outcome.
    pub fn run(&self, accesses: &[u64], tau_cli: Dur, plan: &FaultPlan) -> FaultReport {
        assert!(!accesses.is_empty(), "empty analysis");
        let k = self.members.max(1);
        let members = (0..k)
            .map(|index| {
                let mut dv = fresh_member_dv(&self.cfg, index, k);
                dv.seed_estimates(self.alpha_sim + self.queue.mean(), self.tau_sim);
                VMember {
                    dv: Some(dv),
                    journal: Vec::new(),
                    epoch: 0,
                    incarnation: 0,
                    client: ANALYSIS_CLIENT,
                    connected_epoch: 0,
                    held: HashMap::new(),
                    needs_reconnect: false,
                    leases: HashMap::new(),
                    delayed_until: SimTime::ZERO,
                    fail_next: 0,
                    hang_next: 0,
                    corrupt_next: 0,
                    tick_at: None,
                }
            })
            .collect();
        let mut world = FaultWorld {
            members,
            router: DvRouter::new(self.cfg.steps, k),
            storage: HashMap::new(),
            sims: HashMap::new(),
            rng: SeedSeq::new(self.seed).rng(0),
            exp: ExpParams {
                alpha_sim: self.alpha_sim,
                tau_sim: self.tau_sim,
                tau_cli,
                queue: self.queue,
                nodes_per_sim: 1,
                output_bytes: self.cfg.output_bytes,
            },
            cfg: self.cfg.clone(),
            cluster_size: k,
            lease_timeout: self.lease_timeout,
            accesses: accesses.to_vec(),
            cursor: 0,
            waiting_for: None,
            release_queue: VecDeque::new(),
            pin_window: self.pin_window.max(1),
            done_at: None,
            next_client: ANALYSIS_CLIENT + 1,
            served: Vec::new(),
            failed: Vec::new(),
            failed_codes: Vec::new(),
            reconnects: 0,
            pins_reasserted: 0,
            pins_recovered: 0,
            wal_replayed: 0,
            leases_expired: 0,
            failover: self.failover,
            down: vec![false; k as usize],
            taken_over: HashMap::new(),
            taken_intervals: vec![HashSet::new(); k as usize],
            takeover_epoch: 0,
            takeovers: 0,
            takeover_intervals_primed: 0,
            pins_handed_back: 0,
        };

        let mut engine: Engine<FaultWorld> = Engine::new();
        for &fault in &plan.faults {
            match fault {
                Fault::CrashMember { member, at } => {
                    engine.schedule_at(SimTime::ZERO + at, move |en, w: &mut FaultWorld| {
                        crash_member(en, w, member)
                    });
                }
                Fault::RestartMember { member, at, recover } => {
                    engine.schedule_at(SimTime::ZERO + at, move |en, w: &mut FaultWorld| {
                        restart_member(en, w, member, recover)
                    });
                }
                Fault::DropConnection { member, at } => {
                    engine.schedule_at(SimTime::ZERO + at, move |en, w: &mut FaultWorld| {
                        drop_connection(en, w, member)
                    });
                }
                Fault::DelayMember { member, from, lasting } => {
                    engine.schedule_at(SimTime::ZERO + from, move |en, w: &mut FaultWorld| {
                        w.members[member].delayed_until = en.now() + lasting;
                    });
                }
                Fault::FailSim { member, at, persistent } => {
                    engine.schedule_at(SimTime::ZERO + at, move |_en, w: &mut FaultWorld| {
                        let m = &mut w.members[member];
                        m.fail_next = if persistent {
                            u64::MAX
                        } else {
                            m.fail_next.saturating_add(1)
                        };
                    });
                }
                Fault::HangSim { member, at } => {
                    engine.schedule_at(SimTime::ZERO + at, move |_en, w: &mut FaultWorld| {
                        w.members[member].hang_next += 1;
                    });
                }
                Fault::CorruptOutput { member, at } => {
                    engine.schedule_at(SimTime::ZERO + at, move |_en, w: &mut FaultWorld| {
                        w.members[member].corrupt_next += 1;
                    });
                }
            }
        }
        engine.schedule_at(SimTime::ZERO, |en, w: &mut FaultWorld| issue_next(en, w));
        engine.run(&mut world);

        let done_at = world.done_at.unwrap_or_else(|| {
            panic!(
                "faulted analysis deadlocked at access {}/{} (waiting {:?}, failed {:?})",
                world.cursor,
                world.accesses.len(),
                world.waiting_for,
                world.failed
            )
        });
        let mut stats = DvStats::default();
        let mut residue = 0u64;
        for m in &world.members {
            if let Some(dv) = &m.dv {
                stats.accumulate(dv.stats());
                residue += (dv.active_sims()
                    + dv.queued_launches()
                    + dv.pending_keys()
                    + dv.waiting_keys()) as u64;
            }
        }
        FaultReport {
            served: world.served,
            failed: world.failed,
            failed_codes: world.failed_codes,
            completion: done_at.saturating_since(SimTime::ZERO),
            reconnects: world.reconnects,
            pins_reasserted: world.pins_reasserted,
            pins_recovered: world.pins_recovered,
            wal_replayed: world.wal_replayed,
            leases_expired: world.leases_expired,
            takeovers: world.takeovers,
            takeover_intervals_primed: world.takeover_intervals_primed,
            pins_handed_back: world.pins_handed_back,
            takeover_epoch: world.takeover_epoch,
            journals: world.members.iter().map(|m| m.journal.clone()).collect(),
            stats,
            residue,
        }
    }
}

/// A member's DataVirtualizer, configured exactly as the real cluster
/// configures one: interval-residue ownership and a `1/K` cache slice.
fn fresh_member_dv(cfg: &ContextCfg, index: u32, k: u32) -> DataVirtualizer {
    let (mut shards, _router) =
        ShardedDv::cluster_member(cfg.clone(), 1, ClusterMember::new(index, k)).into_parts();
    shards.pop().expect("one shard requested")
}

/// Can the analysis reach member `m` right now?
fn reachable(w: &FaultWorld, m: usize, now: SimTime) -> bool {
    w.members[m].dv.is_some() && now >= w.members[m].delayed_until
}

/// kill -9: in-memory state gone, journal and storage intact. The
/// un-replied request of a blocked analysis dies with the daemon — the
/// client re-issues it after the member returns.
fn crash_member(en: &mut Engine<FaultWorld>, w: &mut FaultWorld, m: usize) {
    let member = &mut w.members[m];
    member.dv = None;
    member.incarnation += 1;
    member.needs_reconnect = true;
    member.leases.clear();
    member.tick_at = None;
    // Whatever this member had primed as a taker died with it.
    w.taken_intervals[m].clear();
    w.sims.retain(|&(owner, _, _), _| owner != m);
    if let Some((wm, _, _)) = w.waiting_for {
        if wm == m {
            w.waiting_for = None;
            w.cursor -= 1; // re-issue the in-flight access
            en.schedule_in(VRETRY, issue_next);
        }
    }
}

/// Restart after a crash: re-prime owned resident steps from the
/// shared storage, then (with `recover`) replay the journal — restore
/// pins under prior client ids, grant recovery leases, compact.
fn restart_member(en: &mut Engine<FaultWorld>, w: &mut FaultWorld, m: usize, recover: bool) {
    assert!(w.members[m].dv.is_none(), "restarting a live member");
    let mut dv = fresh_member_dv(&w.cfg, m as u32, w.cluster_size);
    dv.seed_estimates(w.exp.alpha_sim + w.exp.queue.mean(), w.exp.tau_sim);
    let mut owned: Vec<(u64, u64)> = w
        .storage
        .iter()
        .filter(|&(&key, _)| w.router.shard_of_key(key) == m)
        .map(|(&key, &size)| (key, size))
        .collect();
    owned.sort_unstable();
    for (key, size) in owned {
        for evicted in dv.prime(key, size) {
            w.storage.remove(&evicted);
        }
    }

    let member = &mut w.members[m];
    let replayed = WalState::replay(&member.journal);
    w.wal_replayed += member.journal.len() as u64;
    member.epoch = replayed.epoch + 1;
    let mut state = WalState {
        epoch: member.epoch,
        ..WalState::default()
    };
    if recover {
        let mut pins: Vec<(&(u64, u64), &u32)> = replayed.pins.iter().collect();
        pins.sort_unstable();
        for (&(client, key), &count) in pins {
            for _ in 0..count {
                if !dv.restore_pin(client, key) {
                    break;
                }
                w.pins_recovered += 1;
                *state.pins.entry((client, key)).or_insert(0) += 1;
            }
        }
        let deadline = en.now() + w.lease_timeout;
        for client in state.live_clients() {
            state.leases.push(client);
            member.leases.insert(client, deadline);
            en.schedule_at(deadline, move |_en, w: &mut FaultWorld| {
                expire_lease(w, m, client, deadline)
            });
        }
    }
    member.journal = state.snapshot(member.epoch);
    member.tick_at = None;
    member.dv = Some(dv);
}

/// Recovery lease expiry: the prior client never re-asserted — release
/// its restored pins through the normal `ClientGone` path.
fn expire_lease(w: &mut FaultWorld, m: usize, client: u64, deadline: SimTime) {
    let member = &mut w.members[m];
    // The lease may have been claimed by a re-assertion, or replaced by
    // a later incarnation's recovery: only the exact grant expires.
    if member.leases.get(&client) != Some(&deadline) {
        return;
    }
    member.leases.remove(&client);
    w.leases_expired += 1;
    let epoch = member.epoch;
    member.journal.push(WalRecord::ClientGone { client, epoch });
    if let Some(dv) = member.dv.as_mut() {
        // Lease expiry launches nothing: releases at most unpin.
        let _ = dv.handle(deadline, DvEvent::ClientGone { client });
    }
}

/// TCP reset on a live member: the daemon sees the hangup and releases
/// the session's pins; the client re-handshakes on next use.
fn drop_connection(en: &mut Engine<FaultWorld>, w: &mut FaultWorld, m: usize) {
    let member = &mut w.members[m];
    let Some(dv) = member.dv.as_mut() else {
        return; // already crashed: nothing to drop
    };
    let client = member.client;
    let epoch = member.epoch;
    member.journal.push(WalRecord::ClientGone { client, epoch });
    let actions = dv.handle(en.now(), DvEvent::ClientGone { client });
    member.needs_reconnect = true;
    apply_member_actions(en, w, m, actions);
    if let Some((wm, _, _)) = w.waiting_for {
        if wm == m {
            // The blocked request died with the connection.
            w.waiting_for = None;
            w.cursor -= 1;
            en.schedule_in(VRETRY, issue_next);
        }
    }
}

/// Re-handshake with member `m` if the previous connection died:
/// cross-epoch sessions re-assert held pins (the daemon transfers what
/// recovery restored under a live lease), same-epoch sessions know the
/// daemon already released everything.
fn ensure_session(en: &mut Engine<FaultWorld>, w: &mut FaultWorld, m: usize) {
    if !w.members[m].needs_reconnect {
        return;
    }
    let now = en.now();
    w.reconnects += 1;
    let prior = w.members[m].client;
    let new_client = w.next_client;
    w.next_client += 1;
    let member = &mut w.members[m];
    let restarted = member.connected_epoch != member.epoch;
    member.client = new_client;
    member.connected_epoch = member.epoch;
    member.needs_reconnect = false;
    let epoch = member.epoch;
    if !restarted {
        // Same instance: the hangup's ClientGone already dropped the
        // pins; the client simply forgets them (and re-acquires lazily
        // on its next access — for this analysis, the release that was
        // coming anyway).
        member.held.clear();
        return;
    }
    let lease = member.leases.remove(&prior);
    if lease.is_none_or(|deadline| now >= deadline) {
        member.held.clear();
        if lease.is_some() {
            // Claimed an already-expired (to-the-instant) lease: its
            // scheduled expiry will no-op, so release the restored
            // pins here — they must not outlive the lease.
            w.leases_expired += 1;
            member.journal.push(WalRecord::ClientGone { client: prior, epoch });
            let actions = member
                .dv
                .as_mut()
                .expect("reachable member has a DV")
                .handle(now, DvEvent::ClientGone { client: prior });
            apply_member_actions(en, w, m, actions);
        }
        return;
    }
    let mut held: Vec<(u64, u32)> = member.held.drain().collect();
    held.sort_unstable();
    let dv = member.dv.as_mut().expect("reachable member has a DV");
    let mut restored: HashMap<u64, u32> = HashMap::new();
    for (key, count) in held {
        for _ in 0..count {
            if dv.transfer_pin(prior, new_client, key) {
                w.pins_reasserted += 1;
                *restored.entry(key).or_insert(0) += 1;
            }
        }
    }
    let actions = dv.handle(now, DvEvent::ClientGone { client: prior });
    let mut log: Vec<(u64, u32)> = restored.iter().map(|(&k, &c)| (k, c)).collect();
    log.sort_unstable();
    let member = &mut w.members[m];
    for (key, count) in log {
        for _ in 0..count {
            member.journal.push(WalRecord::PinAcquire {
                client: new_client,
                key,
                epoch,
            });
        }
    }
    member.journal.push(WalRecord::ClientGone { client: prior, epoch });
    member.held = restored;
    apply_member_actions(en, w, m, actions);
}

/// Releases the previously consumed key, then issues the next access —
/// retrying (in virtual time) while the owning member is unreachable.
fn issue_next(en: &mut Engine<FaultWorld>, w: &mut FaultWorld) {
    while w.release_queue.len() > w.pin_window {
        let prev = w.release_queue.pop_front().expect("len checked");
        // A pin parked on a taker releases there, not at its home.
        let m = match w.taken_over.get_mut(&prev) {
            Some(entry) => {
                let taker = entry.0;
                entry.1 -= 1;
                if entry.1 == 0 {
                    w.taken_over.remove(&prev);
                }
                taker
            }
            None => w.router.shard_of_key(prev),
        };
        let owner = &mut w.members[m];
        let pinned = match owner.held.get_mut(&prev) {
            Some(n) => {
                *n -= 1;
                if *n == 0 {
                    owner.held.remove(&prev);
                }
                true
            }
            None => false,
        };
        // A release only reaches a live, connected member; otherwise
        // the pin is (or will be) dropped by ClientGone/recovery.
        if pinned && !owner.needs_reconnect && reachable(w, m, en.now()) {
            let client = w.members[m].client;
            let epoch = w.members[m].epoch;
            w.members[m].journal.push(WalRecord::PinRelease {
                client,
                key: prev,
                epoch,
            });
            let actions = w.members[m]
                .dv
                .as_mut()
                .expect("reachable member has a DV")
                .handle(en.now(), DvEvent::Release { client, key: prev });
            apply_member_actions(en, w, m, actions);
        }
    }
    if w.cursor >= w.accesses.len() {
        w.done_at = Some(en.now());
        return;
    }
    if w.failover {
        revive_members(en, w);
    }
    let key = w.accesses[w.cursor];
    let home = w.router.shard_of_key(key);
    let m = if reachable(w, home, en.now()) {
        home
    } else if w.failover && w.members[home].dv.is_none() {
        // The home member is crashed — not merely delayed (a delayed
        // member keeps its connection, so the client just retries).
        // Fail its intervals over to the successor-rule taker.
        match detect_down(en, w, home) {
            Some(taker) => taker,
            None => {
                // Every other member is down too: nothing to take over.
                en.schedule_in(VRETRY, issue_next);
                return;
            }
        }
    } else {
        en.schedule_in(VRETRY, issue_next);
        return;
    };
    ensure_session(en, w, m);
    w.cursor += 1;
    if m != home && w.cfg.steps.valid_key(key) {
        // Tagged takeover acquire: the taker primes the dead member's
        // interval from the shared storage before serving it.
        w.takeovers += 1;
        takeover_prime(w, m, w.cfg.steps.interval_of(key));
    }
    let client = w.members[m].client;
    let actions = w.members[m]
        .dv
        .as_mut()
        .expect("reachable member has a DV")
        .handle(en.now(), DvEvent::Acquire { client, key });
    let mut ready = false;
    let mut failed: Option<FailCode> = None;
    for a in &actions {
        match a {
            DvAction::NotifyReady { client: c, key: k } if *c == client && *k == key => {
                ready = true
            }
            DvAction::NotifyFailed { key: k, code, .. } if *k == key => failed = Some(*code),
            _ => {}
        }
    }
    apply_member_actions(en, w, m, actions);
    if let Some(code) = failed {
        w.failed.push(key);
        w.failed_codes.push(code);
        en.schedule_in(Dur::ZERO, issue_next);
    } else if ready {
        grant(en, w, m, key);
    } else {
        w.waiting_for = Some((m, client, key));
    }
}

/// A pin was granted: journal it, track it, consume, move on. A grant
/// for a key the member does not own is a takeover pin — journaled as
/// such (the daemon's stateless ownership check) and tracked in
/// `taken_over` so its release routes back to the taker.
fn grant(en: &mut Engine<FaultWorld>, w: &mut FaultWorld, m: usize, key: u64) {
    let foreign = w.router.shard_of_key(key) != m;
    let member = &mut w.members[m];
    let (client, epoch) = (member.client, member.epoch);
    member.journal.push(if foreign {
        WalRecord::TakeoverPin { client, key, epoch }
    } else {
        WalRecord::PinAcquire { client, key, epoch }
    });
    *member.held.entry(key).or_insert(0) += 1;
    if foreign {
        let entry = w.taken_over.entry(key).or_insert((m, 0));
        entry.0 = m;
        entry.1 += 1;
    }
    w.served.push(key);
    w.release_queue.push_back(key);
    en.schedule_in(w.exp.tau_cli, issue_next);
}

/// Declares a crashed member down (idempotent), re-homes the pins the
/// session held there onto the taker, and returns the taker — `None`
/// when no live taker exists. Uses the same successor rule as the real
/// `DvCluster`, so scripted plans pin the real routing bit-for-bit.
fn detect_down(en: &mut Engine<FaultWorld>, w: &mut FaultWorld, m: usize) -> Option<usize> {
    // Sweep every crashed member, not just `m`: the successor rule
    // consults the down set, so a crashed-but-undetected member must
    // never be picked as a taker. Flags first, then re-homing, so the
    // re-homes see the complete down set.
    let newly: Vec<usize> = (0..w.members.len())
        .filter(|&i| w.members[i].dv.is_none() && !w.down[i])
        .collect();
    for &i in &newly {
        w.down[i] = true;
        w.takeover_epoch += 1;
    }
    for i in newly {
        rehome_pins(en, w, i);
    }
    successor_taker(m, w.members.len(), &w.down)
}

/// Re-homes the pins the session held at dead member `m` onto its
/// taker, as `DvCluster` does at down-detection: one tagged takeover
/// acquire per held pin. A pin whose key cannot be granted
/// synchronously from the taker's primed cache is dropped — the real
/// client blocks on the taker's re-simulation there; the virtual
/// analysis must not.
fn rehome_pins(en: &mut Engine<FaultWorld>, w: &mut FaultWorld, m: usize) {
    let mut held: Vec<(u64, u32)> = w.members[m].held.drain().collect();
    let Some(taker) = successor_taker(m, w.members.len(), &w.down) else {
        return; // no live taker: the pins are simply lost
    };
    held.sort_unstable();
    ensure_session(en, w, taker);
    for (key, count) in held {
        // If the key was itself parked on `m` (a dead taker), the old
        // entry counts pins that died with it: start over.
        if w.taken_over.get(&key).is_some_and(|e| e.0 == m) {
            w.taken_over.remove(&key);
        }
        takeover_prime(w, taker, w.cfg.steps.interval_of(key));
        for _ in 0..count {
            w.takeovers += 1;
            let client = w.members[taker].client;
            let actions = w.members[taker]
                .dv
                .as_mut()
                .expect("taker is alive")
                .handle(en.now(), DvEvent::Acquire { client, key });
            let granted = actions.iter().any(|a| {
                matches!(a, DvAction::NotifyReady { client: c, key: k }
                    if *c == client && *k == key)
            });
            apply_member_actions(en, w, taker, actions);
            if !granted {
                continue;
            }
            let member = &mut w.members[taker];
            let epoch = member.epoch;
            member.journal.push(WalRecord::TakeoverPin { client, key, epoch });
            *member.held.entry(key).or_insert(0) += 1;
            let entry = w.taken_over.entry(key).or_insert((taker, 0));
            entry.0 = taker;
            entry.1 += 1;
        }
    }
}

/// Primes a foreign `interval` on taker `t` from the shared storage —
/// the virtual analogue of the daemon's per-interval rescan on the
/// first tagged takeover acquire. Idempotent per (taker, interval)
/// until the taker crashes.
fn takeover_prime(w: &mut FaultWorld, t: usize, interval: u64) {
    if !w.taken_intervals[t].insert(interval) {
        return;
    }
    w.takeover_intervals_primed += 1;
    let mut owned: Vec<(u64, u64)> = w
        .storage
        .iter()
        .filter(|&(&key, _)| {
            w.cfg.steps.valid_key(key) && w.cfg.steps.interval_of(key) == interval
        })
        .map(|(&key, &size)| (key, size))
        .collect();
    owned.sort_unstable();
    let dv = w.members[t].dv.as_mut().expect("taker is alive");
    let mut evicted = Vec::new();
    for (key, size) in owned {
        evicted.extend(dv.prime(key, size));
    }
    for key in evicted {
        w.storage.remove(&key);
    }
}

/// Probes down members for revival (the virtual `try_revive`): a
/// restarted member is re-adopted under a bumped takeover epoch and the
/// pins parked on takers for its intervals are handed back.
fn revive_members(en: &mut Engine<FaultWorld>, w: &mut FaultWorld) {
    for m in 0..w.members.len() {
        if !w.down[m] || !reachable(w, m, en.now()) {
            continue;
        }
        w.down[m] = false;
        w.takeover_epoch += 1;
        ensure_session(en, w, m);
        hand_back_home(en, w, m);
    }
}

/// Hands the takeover pins for member `m`'s intervals back: re-acquire
/// at the restored home member FIRST, then release at the taker — the
/// residency veto never lapses. A key the home member cannot grant
/// synchronously (not yet re-primed) stays parked on its taker.
fn hand_back_home(en: &mut Engine<FaultWorld>, w: &mut FaultWorld, m: usize) {
    let mut parked: Vec<(u64, usize, u32)> = w
        .taken_over
        .iter()
        .filter(|&(&key, _)| w.router.shard_of_key(key) == m)
        .map(|(&key, &(taker, count))| (key, taker, count))
        .collect();
    parked.sort_unstable();
    for (key, taker, count) in parked {
        let mut granted = 0u32;
        for _ in 0..count {
            let client = w.members[m].client;
            let actions = w.members[m]
                .dv
                .as_mut()
                .expect("revived member has a DV")
                .handle(en.now(), DvEvent::Acquire { client, key });
            let ready = actions.iter().any(|a| {
                matches!(a, DvAction::NotifyReady { client: c, key: k }
                    if *c == client && *k == key)
            });
            apply_member_actions(en, w, m, actions);
            if !ready {
                break;
            }
            let member = &mut w.members[m];
            let epoch = member.epoch;
            member.journal.push(WalRecord::PinAcquire { client, key, epoch });
            *member.held.entry(key).or_insert(0) += 1;
            granted += 1;
        }
        if granted < count {
            continue; // stays parked on the taker
        }
        if !reachable(w, taker, en.now()) {
            continue; // taker unreachable: hand back on a later pass
        }
        for _ in 0..count {
            let t = &mut w.members[taker];
            let (tclient, tepoch) = (t.client, t.epoch);
            t.journal.push(WalRecord::PinRelease { client: tclient, key, epoch: tepoch });
            if let Some(n) = t.held.get_mut(&key) {
                *n -= 1;
                if *n == 0 {
                    t.held.remove(&key);
                }
            }
            let actions = t
                .dv
                .as_mut()
                .expect("reachable taker has a DV")
                .handle(en.now(), DvEvent::Release { client: tclient, key });
            apply_member_actions(en, w, taker, actions);
            w.pins_handed_back += 1;
        }
        w.taken_over.remove(&key);
    }
}

/// Applies member `m`'s DV actions to the virtual world.
fn apply_member_actions(
    en: &mut Engine<FaultWorld>,
    w: &mut FaultWorld,
    m: usize,
    actions: Vec<DvAction>,
) {
    for action in actions {
        match action {
            DvAction::NotifyReady { client, key } => {
                deliver_ready(en, w, m, client, key);
            }
            DvAction::NotifyFailed { client, key, code, .. } => {
                if w.waiting_for == Some((m, client, key)) {
                    w.waiting_for = None;
                    w.failed.push(key);
                    w.failed_codes.push(code);
                    en.schedule_in(Dur::ZERO, issue_next);
                }
            }
            DvAction::Launch { sim, keys, .. } => {
                let inc = w.members[m].incarnation;
                w.sims.insert(
                    (m, inc, sim),
                    VSim {
                        keys_end: *keys.end(),
                        next_key: *keys.start(),
                        killed: false,
                    },
                );
                let delay = w.exp.queue.sample(&mut w.rng) + w.exp.alpha_sim;
                en.schedule_in(delay, move |en, w: &mut FaultWorld| {
                    vsim_started(en, w, m, inc, sim)
                });
            }
            DvAction::Kill { sim } => {
                let inc = w.members[m].incarnation;
                if let Some(s) = w.sims.get_mut(&(m, inc, sim)) {
                    s.killed = true;
                }
            }
            DvAction::Evict { key } => {
                w.storage.remove(&key);
            }
        }
    }
    // Any of the above may have armed a backoff retry, a hang
    // deadline, or a quarantine: play the daemon reaper and make sure
    // a wake-up is scheduled at the earliest one.
    schedule_member_tick(en, w, m);
}

/// Arms member `m`'s supervision wake-up at its DV's next deadline —
/// the DES analogue of the daemon's reaper thread. A deadline that is
/// already due reports as `now`; that only happens for slot-blocked
/// queue entries, which drain event-driven when `SimFinished` frees a
/// slot, so only strictly-future deadlines need a timer (scheduling at
/// `now` would spin the engine without advancing virtual time).
fn schedule_member_tick(en: &mut Engine<FaultWorld>, w: &mut FaultWorld, m: usize) {
    let now = en.now();
    let Some(dv) = w.members[m].dv.as_ref() else {
        return;
    };
    let Some(due) = dv.next_due(now) else {
        return;
    };
    if due <= now || w.members[m].tick_at.is_some_and(|t| t <= due) {
        return;
    }
    w.members[m].tick_at = Some(due);
    let inc = w.members[m].incarnation;
    en.schedule_at(due, move |en, w: &mut FaultWorld| member_tick(en, w, m, inc));
}

/// One supervision wake-up: run the member DV's timers (watchdog
/// kills, quarantine expiry, backoff drains), apply what falls out,
/// re-arm.
fn member_tick(en: &mut Engine<FaultWorld>, w: &mut FaultWorld, m: usize, inc: u64) {
    if w.members[m].incarnation != inc {
        return; // armed by a previous incarnation
    }
    w.members[m].tick_at = None;
    let Some(dv) = w.members[m].dv.as_mut() else {
        return;
    };
    let mut actions = Vec::new();
    dv.tick(en.now(), &mut actions);
    apply_member_actions(en, w, m, actions);
}

/// Delivers a `NotifyReady` to the blocked analysis — deferred while
/// the member is delayed (the notification cannot cross a partition).
fn deliver_ready(en: &mut Engine<FaultWorld>, w: &mut FaultWorld, m: usize, client: u64, key: u64) {
    if w.waiting_for != Some((m, client, key)) {
        return; // stale notify (pre-crash waiter or prefetch)
    }
    let now = en.now();
    if now < w.members[m].delayed_until {
        let wait = w.members[m].delayed_until.saturating_since(now);
        en.schedule_in(wait, move |en, w: &mut FaultWorld| {
            deliver_ready(en, w, m, client, key)
        });
        return;
    }
    w.waiting_for = None;
    grant(en, w, m, key);
}

fn vsim_started(en: &mut Engine<FaultWorld>, w: &mut FaultWorld, m: usize, inc: u64, sim: SimId) {
    if w.members[m].incarnation != inc || w.sims.get(&(m, inc, sim)).is_none_or(|s| s.killed) {
        return;
    }
    if w.members[m].fail_next > 0 {
        // Armed FailSim: the attempt dies before a sign of life (OOM,
        // scheduler kill). The supervisor decides retry vs poison.
        w.members[m].fail_next -= 1;
        w.sims.remove(&(m, inc, sim));
        let actions = w.members[m]
            .dv
            .as_mut()
            .expect("live incarnation has a DV")
            .handle(en.now(), DvEvent::SimFailed { sim });
        apply_member_actions(en, w, m, actions);
        return;
    }
    let actions = w.members[m]
        .dv
        .as_mut()
        .expect("live incarnation has a DV")
        .handle(en.now(), DvEvent::SimStarted { sim });
    apply_member_actions(en, w, m, actions);
    if w.members[m].hang_next > 0 {
        // Armed HangSim: one sign of life, then silence — no produce
        // is ever scheduled, so only the watchdog can reclaim it.
        w.members[m].hang_next -= 1;
        return;
    }
    en.schedule_in(w.exp.tau_sim, move |en, w: &mut FaultWorld| {
        vsim_produce(en, w, m, inc, sim)
    });
}

fn vsim_produce(en: &mut Engine<FaultWorld>, w: &mut FaultWorld, m: usize, inc: u64, sim: SimId) {
    if w.members[m].incarnation != inc {
        return; // the member crashed out from under this sim
    }
    let Some(s) = w.sims.get_mut(&(m, inc, sim)) else {
        return;
    };
    if s.killed {
        w.sims.remove(&(m, inc, sim));
        return;
    }
    let key = s.next_key;
    if w.members[m].corrupt_next > 0 {
        // Armed CorruptOutput: the step never reaches the shared
        // storage — the integrity gate rejects it before residency,
        // and the DV kills the producer and hands it to the retry
        // machinery.
        w.members[m].corrupt_next -= 1;
        w.sims.remove(&(m, inc, sim));
        let actions = w.members[m]
            .dv
            .as_mut()
            .expect("live incarnation has a DV")
            .handle(en.now(), DvEvent::OutputCorrupt { sim, key });
        apply_member_actions(en, w, m, actions);
        return;
    }
    s.next_key += 1;
    let finished = s.next_key > s.keys_end;
    w.storage.insert(key, w.exp.output_bytes);
    let actions = w.members[m]
        .dv
        .as_mut()
        .expect("live incarnation has a DV")
        .handle(en.now(), DvEvent::FileProduced {
            sim,
            key,
            size: w.exp.output_bytes,
        });
    apply_member_actions(en, w, m, actions);
    if finished {
        w.sims.remove(&(m, inc, sim));
        if w.members[m].incarnation == inc {
            let actions = w.members[m]
                .dv
                .as_mut()
                .expect("live incarnation has a DV")
                .handle(en.now(), DvEvent::SimFinished { sim });
            apply_member_actions(en, w, m, actions);
        }
    } else {
        en.schedule_in(w.exp.tau_sim, move |en, w: &mut FaultWorld| {
            vsim_produce(en, w, m, inc, sim)
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{StepMath, SupervisorCfg};

    /// Fig. 7/8-style micro configuration: Δr = 4 outputs per interval,
    /// alpha = 2 s, tau_sim = 1 s, tau_cli = 0.5 s.
    fn experiment(prefetch: bool, smax: u32) -> VirtualExperiment {
        let steps = StepMath::new(1, 4, 10_000);
        let cfg = ContextCfg::new("v", steps, 1, 1_000_000)
            .with_policy("lru")
            .with_smax(smax)
            .with_prefetch(prefetch);
        VirtualExperiment {
            cfg,
            alpha_sim: Dur::from_secs(2),
            tau_sim: Dur::from_secs(1),
            queue: QueueModel::None,
            nodes_per_sim: 4,
            seed: 7,
        }
    }

    #[test]
    fn cold_forward_scan_without_prefetch_pays_every_restart() {
        let exp = experiment(false, 8);
        let accesses: Vec<u64> = (1..=24).collect();
        let res = exp.run_analysis(&accesses, Dur::from_millis(500));
        // 6 intervals, each paying alpha (2 s) + 4·tau (4 s) ≈ 36 s
        // minimum; consumption overlaps production so the total is at
        // least alpha per interval plus all production time.
        assert_eq!(res.stats.restarts, 6);
        assert!(res.completion >= Dur::from_secs(6 * 2 + 24));
        assert_eq!(res.stats.produced_steps, 24);
    }

    #[test]
    fn prefetch_hides_restart_latency_on_forward_scan() {
        let no_pf = experiment(false, 8);
        let pf = experiment(true, 8);
        let accesses: Vec<u64> = (1..=96).collect();
        let slow = no_pf.run_analysis(&accesses, Dur::from_millis(500));
        let fast = pf.run_analysis(&accesses, Dur::from_millis(500));
        assert!(
            fast.completion < slow.completion,
            "prefetch {} !< no-prefetch {}",
            fast.completion,
            slow.completion
        );
        assert!(fast.stats.prefetch_launches > 0);
    }

    #[test]
    fn smax_bounds_concurrent_sims() {
        for smax in [1, 2, 4] {
            let exp = experiment(true, smax);
            let accesses: Vec<u64> = (1..=64).collect();
            let res = exp.run_analysis(&accesses, Dur::from_millis(250));
            assert!(
                res.peak_sims <= smax,
                "smax={smax} but peak={}",
                res.peak_sims
            );
            assert!(res.peak_nodes <= smax * 4);
        }
    }

    #[test]
    fn higher_smax_speeds_up_fast_analysis() {
        // Analysis 4x faster than the simulation: parallel prefetching
        // should shorten completion (the Fig. 16 effect).
        let accesses: Vec<u64> = (1..=96).collect();
        let t1 = experiment(true, 1)
            .run_analysis(&accesses, Dur::from_millis(250))
            .completion;
        let t4 = experiment(true, 4)
            .run_analysis(&accesses, Dur::from_millis(250))
            .completion;
        assert!(t4 < t1, "smax=4 ({t4}) should beat smax=1 ({t1})");
    }

    #[test]
    fn backward_scan_completes_and_benefits_from_cache() {
        let exp = experiment(true, 4);
        let accesses: Vec<u64> = (1..=48).rev().collect();
        let res = exp.run_analysis(&accesses, Dur::from_millis(500));
        // Each interval simulated at most a few times (first touch
        // materializes the rest for backward hits).
        assert!(res.stats.hits > 0, "backward hits within intervals");
        assert!(res.stats.produced_steps >= 48, "all steps materialized");
    }

    #[test]
    fn warm_cache_run_is_instant() {
        let exp = experiment(false, 8);
        // Run everything once... then a second run in the same world is
        // not supported; instead check a repeated-access trace.
        let accesses: Vec<u64> = (1..=8).chain(1..=8).collect();
        let res = exp.run_analysis(&accesses, Dur::from_millis(100));
        assert_eq!(res.stats.restarts, 2, "second pass fully cached");
    }

    #[test]
    fn out_of_timeline_accesses_are_skipped_not_deadlocked() {
        let exp = experiment(false, 8);
        let res = exp.run_analysis(&[1, 999_999_999, 2], Dur::from_millis(100));
        assert_eq!(res.stats.produced_steps, 4, "one interval");
    }

    #[test]
    fn deterministic_given_seed() {
        let exp = experiment(true, 4);
        let accesses: Vec<u64> = (1..=48).collect();
        let a = exp.run_analysis(&accesses, Dur::from_millis(300));
        let b = exp.run_analysis(&accesses, Dur::from_millis(300));
        assert_eq!(a.completion, b.completion);
        assert_eq!(a.stats.produced_steps, b.stats.produced_steps);
    }

    #[test]
    fn queueing_delay_slows_completion() {
        let mut exp = experiment(false, 8);
        let accesses: Vec<u64> = (1..=24).collect();
        let fast = exp.run_analysis(&accesses, Dur::from_millis(500)).completion;
        exp.queue = QueueModel::Constant(Dur::from_secs(30));
        let slow = exp.run_analysis(&accesses, Dur::from_millis(500)).completion;
        assert!(slow > fast + Dur::from_secs(30));
    }

    #[test]
    fn direction_change_kills_prefetched_sims() {
        // §IV-C: "SimFS tries to kill simulations prefetched by analyses
        // that ... changed analysis direction." A long restart latency
        // keeps the speculative simulations in flight (still in their
        // alpha phase) when the analysis abruptly jumps to a backward
        // scan elsewhere on the timeline — those sims serve nobody and
        // must be killed.
        let steps = StepMath::new(1, 4, 10_000);
        let cfg = ContextCfg::new("kill", steps, 1, 1_000_000)
            .with_policy("lru")
            .with_smax(4)
            .with_prefetch(true);
        let exp = VirtualExperiment {
            cfg,
            alpha_sim: Dur::from_secs(30),
            tau_sim: Dur::from_secs(1),
            queue: QueueModel::None,
            nodes_per_sim: 4,
            seed: 7,
        };
        let mut accesses: Vec<u64> = (1..=20).collect();
        accesses.extend((500..=530).rev());
        let res = exp.run_analysis(&accesses, Dur::from_millis(250));
        assert!(
            res.stats.kills > 0,
            "direction change must kill outstanding prefetches: {:?}",
            res.stats
        );
        // The run still completes every access.
        assert!(res.stats.hits + res.stats.misses >= accesses.len() as u64);
    }

    #[test]
    fn pollution_reset_fires_under_tiny_cache() {
        // §IV-C: a prefetched step evicted before its access is a cache
        // pollution signal. Cache of 8 steps with aggressive prefetching
        // over a long scan forces produced-then-evicted steps.
        let steps = StepMath::new(1, 4, 10_000);
        let cfg = ContextCfg::new("pollute", steps, 1, 8)
            .with_policy("lru")
            .with_smax(8)
            .with_prefetch(true);
        let exp = VirtualExperiment {
            cfg,
            alpha_sim: Dur::from_secs(8),
            tau_sim: Dur::from_millis(100),
            queue: QueueModel::None,
            nodes_per_sim: 1,
            seed: 11,
        };
        // Slow analysis: prefetched steps sit in the tiny cache and get
        // evicted by later productions before they are consumed.
        let accesses: Vec<u64> = (1..=120).collect();
        let res = exp.run_analysis(&accesses, Dur::from_secs(2));
        assert!(
            res.stats.pollution_resets > 0,
            "tiny cache + eager prefetch must trigger pollution resets: {:?}",
            res.stats
        );
        // Liveness: despite the churn, every step was served.
        assert_eq!(res.stats.hits + res.stats.misses, 120);
    }

    #[test]
    fn strided_analysis_is_detected_and_served() {
        // k = 3 strided forward scan: the agent must confirm the stride
        // and prefetching must still help.
        let exp = experiment(true, 4);
        let accesses: Vec<u64> = (1..=40).map(|i| i * 3).collect();
        let res = exp.run_analysis(&accesses, Dur::from_millis(250));
        assert!(res.stats.prefetch_launches > 0, "{:?}", res.stats);
        let no_pf = experiment(false, 4);
        let base = no_pf.run_analysis(&accesses, Dur::from_millis(250));
        assert!(
            res.completion <= base.completion,
            "strided prefetch should not slow things down: {} vs {}",
            res.completion,
            base.completion
        );
    }

    #[test]
    fn analytic_bounds_bracket_the_run() {
        let exp = experiment(true, 8);
        let m = 96u64;
        let accesses: Vec<u64> = (1..=m).collect();
        let res = exp.run_analysis(&accesses, Dur::from_millis(250));
        let t_lower = exp.t_lower(m);
        assert!(
            res.completion >= t_lower,
            "ran faster than the parallel lower bound: {} < {}",
            res.completion,
            t_lower
        );
    }

    // -- scripted fault injection ---------------------------------------

    /// Three-member cluster, Δr = 4: member k owns intervals ≡ k mod 3
    /// (keys 1-4 → member 0, 5-8 → member 1, 17-20 → member 1, ...).
    fn faulted() -> FaultedClusterExperiment {
        let steps = StepMath::new(1, 4, 10_000);
        let cfg = ContextCfg::new("vf", steps, 1, 1_000_000)
            .with_policy("lru")
            .with_smax(4)
            .with_prefetch(false);
        FaultedClusterExperiment {
            cfg,
            members: 3,
            alpha_sim: Dur::from_secs(2),
            tau_sim: Dur::from_secs(1),
            queue: QueueModel::None,
            lease_timeout: Dur::from_secs(60),
            pin_window: 4,
            failover: false,
            seed: 7,
        }
    }

    const TAU_CLI: Dur = Dur::from_millis(500);

    #[test]
    fn faultless_cluster_serves_in_order() {
        let exp = faulted();
        let accesses: Vec<u64> = (1..=24).collect();
        let rep = exp.run(&accesses, TAU_CLI, &FaultPlan::default());
        assert_eq!(rep.served, accesses);
        assert!(rep.failed.is_empty());
        assert_eq!(rep.reconnects, 0);
        assert_eq!(rep.pins_recovered, 0);
        assert_eq!(rep.leases_expired, 0);
    }

    #[test]
    fn kill9_then_recover_matches_faultless_run() {
        // The analysis consumes interval 1 (keys 5-8, all member 1,
        // all pinned: window 4), then blocks on 17 (member 1 again).
        // Member 1 dies mid-wait, restarts with recovery: the WAL
        // restores the 4 pins, the client reconnects and re-asserts
        // them, and the run ends exactly where the faultless run does.
        let exp = faulted();
        let accesses = [5, 6, 7, 8, 17];
        let clean = exp.run(&accesses, TAU_CLI, &FaultPlan::default());
        let plan = FaultPlan {
            faults: vec![
                Fault::CrashMember { member: 1, at: Dur::from_millis(7_200) },
                Fault::RestartMember { member: 1, at: Dur::from_secs(9), recover: true },
            ],
        };
        let rep = exp.run(&accesses, TAU_CLI, &plan);
        assert_eq!(rep.served, clean.served, "recovery changed the answer");
        assert!(rep.failed.is_empty());
        assert_eq!(rep.reconnects, 1);
        assert_eq!(rep.pins_recovered, 4, "window pins restored from the WAL");
        assert_eq!(rep.pins_reasserted, 4, "client re-claimed every pin");
        assert!(rep.wal_replayed > 0);
        assert_eq!(rep.leases_expired, 0, "re-assertion beat the lease");
        assert!(rep.completion > clean.completion, "the crash was not free");
    }

    #[test]
    fn fault_schedule_is_deterministic() {
        let exp = faulted();
        let accesses: Vec<u64> = (1..=32).collect();
        let plan = FaultPlan {
            faults: vec![
                Fault::CrashMember { member: 1, at: Dur::from_millis(5_300) },
                Fault::RestartMember { member: 1, at: Dur::from_secs(8), recover: true },
                Fault::DropConnection { member: 0, at: Dur::from_millis(11_700) },
            ],
        };
        let a = exp.run(&accesses, TAU_CLI, &plan);
        let b = exp.run(&accesses, TAU_CLI, &plan);
        assert_eq!(a, b, "same seed + same plan must replay bit-for-bit");
    }

    #[test]
    fn restart_without_recover_forgets_pins_but_still_serves() {
        let exp = faulted();
        let accesses = [5, 6, 7, 8, 17];
        let clean = exp.run(&accesses, TAU_CLI, &FaultPlan::default());
        let plan = FaultPlan {
            faults: vec![
                Fault::CrashMember { member: 1, at: Dur::from_millis(7_200) },
                Fault::RestartMember { member: 1, at: Dur::from_secs(9), recover: false },
            ],
        };
        let rep = exp.run(&accesses, TAU_CLI, &plan);
        assert_eq!(rep.served, clean.served);
        assert!(rep.failed.is_empty());
        assert_eq!(rep.reconnects, 1);
        assert_eq!(rep.pins_recovered, 0, "no WAL replay without --recover");
        assert_eq!(rep.pins_reasserted, 0, "nothing restored, nothing to claim");
    }

    #[test]
    fn dropped_connection_reconnects_in_the_same_epoch() {
        let exp = faulted();
        let accesses: Vec<u64> = (1..=24).collect();
        let clean = exp.run(&accesses, TAU_CLI, &FaultPlan::default());
        let plan = FaultPlan {
            faults: vec![Fault::DropConnection { member: 0, at: Dur::from_millis(5_700) }],
        };
        let rep = exp.run(&accesses, TAU_CLI, &plan);
        assert_eq!(rep.served, clean.served);
        assert!(rep.failed.is_empty());
        assert_eq!(rep.reconnects, 1);
        // Same instance, same epoch: nothing was recovered or leased.
        assert_eq!(rep.pins_recovered, 0);
        assert_eq!(rep.pins_reasserted, 0);
        assert_eq!(rep.leases_expired, 0);
    }

    #[test]
    fn delayed_member_stalls_the_run_but_answers_do_not_change() {
        let exp = faulted();
        let accesses = [5u64, 6, 7, 8];
        let clean = exp.run(&accesses, TAU_CLI, &FaultPlan::default());
        let plan = FaultPlan {
            faults: vec![Fault::DelayMember {
                member: 1,
                from: Dur::from_secs(2),
                lasting: Dur::from_secs(30),
            }],
        };
        let rep = exp.run(&accesses, TAU_CLI, &plan);
        assert_eq!(rep.served, clean.served);
        assert!(rep.failed.is_empty());
        assert_eq!(rep.reconnects, 0, "a delay is not a disconnect");
        assert!(
            rep.completion >= clean.completion + Dur::from_secs(25),
            "a 30 s partition must show up in completion: {} vs {}",
            rep.completion,
            clean.completion
        );
    }

    #[test]
    fn unclaimed_recovery_lease_expires_and_frees_the_pins() {
        // The analysis pins interval 1 (member 1), then spends the rest
        // of the run on members 0 and 2. Member 1 crashes and recovers,
        // but its client never comes back: the recovery lease must
        // expire and the restored pins must be released — without
        // disturbing the analysis.
        let mut exp = faulted();
        exp.lease_timeout = Dur::from_secs(5);
        let mut accesses = vec![5u64, 6, 7, 8];
        accesses.extend((1..=24).filter(|k| StepMath::new(1, 4, 10_000).interval_of(*k) % 3 != 1));
        let clean = exp.run(&accesses, TAU_CLI, &FaultPlan::default());
        let plan = FaultPlan {
            faults: vec![
                Fault::CrashMember { member: 1, at: Dur::from_millis(7_200) },
                Fault::RestartMember { member: 1, at: Dur::from_secs(8), recover: true },
            ],
        };
        let rep = exp.run(&accesses, TAU_CLI, &plan);
        assert_eq!(rep.served, clean.served);
        assert!(rep.failed.is_empty());
        assert_eq!(rep.reconnects, 0, "the client never returned to member 1");
        assert_eq!(rep.pins_recovered, 4);
        assert_eq!(rep.pins_reasserted, 0);
        assert_eq!(rep.leases_expired, 1, "the unclaimed lease must expire");
    }

    // -- interval failover ----------------------------------------------

    #[test]
    fn failover_serves_dead_members_intervals_then_hands_back() {
        // The scripted twin of the real-process kill-9 failover test:
        // the analysis pins interval 1 (member 1), blocks on 17, and
        // member 1 dies mid-wait. With failover on, member 2 takes the
        // intervals over (re-homed window pins + the blocked access),
        // the run never waits for the restart, and once member 1 is
        // back the parked pins are handed home again.
        let mut exp = faulted();
        exp.failover = true;
        let accesses = [5u64, 6, 7, 8, 17, 18, 1, 2];
        let clean = exp.run(&accesses, TAU_CLI, &FaultPlan::default());
        let plan = FaultPlan {
            faults: vec![
                Fault::CrashMember { member: 1, at: Dur::from_millis(7_200) },
                Fault::RestartMember { member: 1, at: Dur::from_secs(9), recover: true },
            ],
        };
        let rep = exp.run(&accesses, TAU_CLI, &plan);
        assert_eq!(rep.served, clean.served, "degraded mode changed the answer");
        assert!(rep.failed.is_empty());
        // Four re-homed window pins plus the rerouted access.
        assert!(rep.takeovers >= 5, "takeovers: {}", rep.takeovers);
        assert!(rep.takeover_intervals_primed >= 1);
        assert!(
            rep.journals[2]
                .iter()
                .any(|r| matches!(r, WalRecord::TakeoverPin { .. })),
            "the taker must journal takeover pins"
        );
        assert!(rep.pins_handed_back > 0, "hand-back must run: {rep:?}");
        // One down-detection plus one revival.
        assert_eq!(rep.takeover_epoch, 2);
        let again = exp.run(&accesses, TAU_CLI, &plan);
        assert_eq!(rep, again, "failover plans must replay bit-for-bit");
    }

    #[test]
    fn failover_completes_with_no_restart_at_all() {
        // Without failover this plan deadlocks (member 1 never comes
        // back); with it, the run degrades and still answers.
        let mut exp = faulted();
        exp.failover = true;
        let accesses = [5u64, 6, 7, 8, 17];
        let clean = exp.run(&accesses, TAU_CLI, &FaultPlan::default());
        let plan = FaultPlan {
            faults: vec![Fault::CrashMember { member: 1, at: Dur::from_millis(7_200) }],
        };
        let rep = exp.run(&accesses, TAU_CLI, &plan);
        assert_eq!(rep.served, clean.served);
        assert!(rep.failed.is_empty());
        assert!(rep.takeovers >= 5);
        assert_eq!(rep.pins_handed_back, 0, "nobody came back to hand back to");
        assert_eq!(rep.takeover_epoch, 1);
    }

    #[test]
    fn taker_death_chains_to_the_next_successor() {
        // Member 1 dies, member 2 takes over, then member 2 dies too:
        // the successor rule walks past both and member 0 ends up
        // serving everything.
        let mut exp = faulted();
        exp.failover = true;
        let accesses = [5u64, 6, 7, 8, 9, 17];
        let plan = FaultPlan {
            faults: vec![
                Fault::CrashMember { member: 1, at: Dur::from_millis(7_200) },
                Fault::CrashMember { member: 2, at: Dur::from_secs(11) },
            ],
        };
        let rep = exp.run(&accesses, TAU_CLI, &plan);
        assert_eq!(rep.served, accesses.to_vec());
        assert!(rep.failed.is_empty());
        assert!(
            rep.journals[0]
                .iter()
                .filter(|r| matches!(r, WalRecord::TakeoverPin { .. }))
                .count()
                >= 4,
            "the second taker must hold the chained takeover pins"
        );
        assert_eq!(rep.takeover_epoch, 2, "two down-detections, no revival");
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]

        /// A recovery lease that expires while the dead member's keys
        /// are parked on a taker must run `ClientGone` exactly once:
        /// no double release, no leaked veto.
        #[test]
        fn lease_expiry_on_taker_held_keys_runs_client_gone_exactly_once(
            restart_ms in 11_000u64..13_000,
            lease_s in 1u64..5,
        ) {
            let mut exp = faulted();
            exp.failover = true;
            exp.lease_timeout = Dur::from_secs(lease_s);
            // The analysis finishes degraded (all of member 1's keys on
            // the taker) before member 1 restarts, so the restored pins'
            // lease is never claimed.
            let accesses = [5u64, 6, 7, 8, 17];
            let plan = FaultPlan {
                faults: vec![
                    Fault::CrashMember { member: 1, at: Dur::from_millis(7_200) },
                    Fault::RestartMember {
                        member: 1,
                        at: Dur::from_millis(restart_ms),
                        recover: true,
                    },
                ],
            };
            let rep = exp.run(&accesses, TAU_CLI, &plan);
            proptest::prop_assert!(rep.failed.is_empty());
            proptest::prop_assert_eq!(rep.pins_handed_back, 0);
            proptest::prop_assert!(
                rep.journals[2]
                    .iter()
                    .filter(|r| matches!(r, WalRecord::TakeoverPin { .. }))
                    .count()
                    >= 4,
                "the taker still parks the dead member's pins"
            );
            proptest::prop_assert_eq!(rep.leases_expired, 1);
            proptest::prop_assert_eq!(
                rep.journals[1]
                    .iter()
                    .filter(|r| matches!(r, WalRecord::ClientGone { .. }))
                    .count(),
                1,
                "ClientGone must run exactly once"
            );
            proptest::prop_assert!(
                WalState::replay(&rep.journals[1]).pins.is_empty(),
                "no pin may outlive the expired lease"
            );
        }
    }

    /// A single-member cluster with a supervision profile scaled to
    /// the virtual timescale: fast backoff and a 2 s quarantine (so
    /// its expiry is observable inside one run), a 5 s hang floor.
    fn supervised() -> FaultedClusterExperiment {
        let steps = StepMath::new(1, 4, 10_000);
        let supervisor = SupervisorCfg {
            backoff_base: Dur::from_millis(100),
            backoff_cap: Dur::from_secs(1),
            quarantine: Dur::from_secs(2),
            hang_floor: Dur::from_secs(5),
            ..SupervisorCfg::default()
        };
        let cfg = ContextCfg::new("vp", steps, 1, 1_000_000)
            .with_policy("lru")
            .with_smax(4)
            .with_prefetch(false)
            .with_supervisor(supervisor);
        FaultedClusterExperiment {
            cfg,
            members: 1,
            alpha_sim: Dur::from_secs(2),
            tau_sim: Dur::from_secs(1),
            queue: QueueModel::None,
            lease_timeout: Dur::from_secs(60),
            pin_window: 4,
            failover: false,
            seed: 7,
        }
    }

    #[test]
    fn transient_sim_failure_retries_transparently() {
        let exp = supervised();
        let accesses: Vec<u64> = (1..=12).collect();
        let clean = exp.run(&accesses, TAU_CLI, &FaultPlan::default());
        assert_eq!(clean.stats.sim_retries, 0);
        assert_eq!(clean.stats.failures, 0);
        let plan = FaultPlan {
            faults: vec![Fault::FailSim { member: 0, at: Dur::ZERO, persistent: false }],
        };
        let rep = exp.run(&accesses, TAU_CLI, &plan);
        // Same final ready set as the faultless run: the retry is
        // invisible to the analysis except for the time it cost.
        assert_eq!(rep.served, clean.served);
        assert!(rep.failed.is_empty());
        assert_eq!(rep.stats.sim_retries, 1);
        assert_eq!(rep.stats.failures, 1);
        assert_eq!(rep.stats.intervals_poisoned, 0);
        assert_eq!(rep.residue, 0);
        assert!(rep.completion > clean.completion);
    }

    #[test]
    fn persistent_failure_poisons_within_budget() {
        let exp = supervised();
        let accesses: Vec<u64> = vec![1, 2, 3];
        let plan = FaultPlan {
            faults: vec![Fault::FailSim { member: 0, at: Dur::ZERO, persistent: true }],
        };
        let rep = exp.run(&accesses, TAU_CLI, &plan);
        assert!(rep.served.is_empty());
        // The first waiter rides the full attempt ladder; the interval
        // then short-circuits the rest from quarantine, all typed.
        assert_eq!(rep.failed, vec![1, 2, 3]);
        assert_eq!(rep.failed_codes, vec![FailCode::Poisoned; 3]);
        assert_eq!(rep.stats.failures, 3, "exactly the attempt budget");
        assert_eq!(rep.stats.sim_retries, 2);
        assert_eq!(rep.stats.intervals_poisoned, 1);
        assert_eq!(rep.residue, 0, "no leaked slot, claim, or waiter");
    }

    #[test]
    fn hung_sim_is_killed_by_watchdog_and_retried() {
        let exp = supervised();
        let accesses: Vec<u64> = (1..=8).collect();
        let clean = exp.run(&accesses, TAU_CLI, &FaultPlan::default());
        let plan = FaultPlan {
            faults: vec![Fault::HangSim { member: 0, at: Dur::ZERO }],
        };
        let rep = exp.run(&accesses, TAU_CLI, &plan);
        assert_eq!(rep.served, clean.served);
        assert!(rep.failed.is_empty());
        assert_eq!(rep.stats.sims_hung_killed, 1);
        assert_eq!(rep.stats.sim_retries, 1);
        assert_eq!(rep.stats.intervals_poisoned, 0);
        assert_eq!(rep.residue, 0);
        // The interval sat wedged until the hang deadline (8× the 1 s
        // tau estimate) lapsed and the watchdog stepped in.
        assert!(rep.completion >= clean.completion + Dur::from_secs(5));
    }

    #[test]
    fn corrupt_output_poisons_then_heals_after_quarantine() {
        let exp = supervised();
        // Three armed corruptions exhaust interval 1's budget through
        // the integrity gate; serving key 6 (interval 2) then burns
        // enough virtual time for the 2 s quarantine to lapse, so the
        // re-access of key 2 relaunches cleanly.
        let accesses: Vec<u64> = vec![2, 6, 2];
        let plan = FaultPlan {
            faults: vec![
                Fault::CorruptOutput { member: 0, at: Dur::ZERO },
                Fault::CorruptOutput { member: 0, at: Dur::ZERO },
                Fault::CorruptOutput { member: 0, at: Dur::ZERO },
            ],
        };
        let rep = exp.run(&accesses, TAU_CLI, &plan);
        assert_eq!(rep.failed, vec![2]);
        assert_eq!(rep.failed_codes, vec![FailCode::CorruptOutput]);
        assert_eq!(rep.served, vec![6, 2]);
        assert_eq!(rep.stats.corrupt_outputs, 3);
        assert_eq!(rep.stats.failures, 3);
        assert_eq!(rep.stats.sim_retries, 2);
        assert_eq!(rep.stats.intervals_poisoned, 1);
        assert_eq!(rep.residue, 0);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        /// Under any scripted mix of production faults, every acquire
        /// resolves — Ready or a typed Failed (`run` panics on
        /// deadlock, so completing at all is the liveness half) — and
        /// the supervision tier leaks nothing: no `s_max` slot, no
        /// pending-production claim, no waiter.
        #[test]
        fn production_faults_never_leak_slots_claims_or_waiters(
            faults in proptest::collection::vec(
                (0u8..3, 0u64..15_000, proptest::arbitrary::any::<bool>()),
                0..4,
            ),
        ) {
            let exp = supervised();
            let accesses: Vec<u64> = (1..=12).collect();
            let plan = FaultPlan {
                faults: faults
                    .into_iter()
                    .map(|(kind, at_ms, persistent)| {
                        let at = Dur::from_millis(at_ms);
                        match kind {
                            0 => Fault::FailSim { member: 0, at, persistent },
                            1 => Fault::HangSim { member: 0, at },
                            _ => Fault::CorruptOutput { member: 0, at },
                        }
                    })
                    .collect(),
            };
            let rep = exp.run(&accesses, TAU_CLI, &plan);
            proptest::prop_assert_eq!(rep.residue, 0);
            proptest::prop_assert_eq!(rep.served.len() + rep.failed.len(), accesses.len());
            proptest::prop_assert_eq!(rep.failed.len(), rep.failed_codes.len());
        }
    }
}

