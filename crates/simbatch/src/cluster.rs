//! A virtual cluster: node accounting with a FIFO job queue.
//!
//! The strong-scalability experiments (Figs. 16/18) run up to `s_max`
//! re-simulations of `P` nodes each; the figure annotations report the
//! total nodes in use. This model provides exactly that accounting: jobs
//! start immediately when their request fits, otherwise they wait in
//! submission order (no backfill — conservative, and deterministic).
//!
//! Like the DV itself, the cluster is a pure state machine: methods
//! return [`ClusterEvent`]s for the caller (DES harness or real
//! launcher) to act upon.

use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// Identifies a submitted job.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct JobId(pub u64);

/// State transitions the caller must act upon.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClusterEvent {
    /// The job acquired its nodes and starts running now.
    Started(JobId),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum JobState {
    Queued,
    Running,
}

#[derive(Clone, Debug)]
struct Job {
    nodes: u32,
    state: JobState,
}

/// Virtual cluster state.
#[derive(Clone, Debug)]
pub struct Cluster {
    total_nodes: u32,
    free_nodes: u32,
    jobs: HashMap<JobId, Job>,
    fifo: VecDeque<JobId>,
    peak_used: u32,
}

impl Cluster {
    /// A cluster with `total_nodes` nodes, all free.
    pub fn new(total_nodes: u32) -> Self {
        Cluster {
            total_nodes,
            free_nodes: total_nodes,
            jobs: HashMap::new(),
            fifo: VecDeque::new(),
            peak_used: 0,
        }
    }

    /// Total node count.
    pub fn total_nodes(&self) -> u32 {
        self.total_nodes
    }

    /// Nodes not allocated to running jobs.
    pub fn free_nodes(&self) -> u32 {
        self.free_nodes
    }

    /// Nodes allocated to running jobs.
    pub fn used_nodes(&self) -> u32 {
        self.total_nodes - self.free_nodes
    }

    /// Highest concurrent node usage observed (the figure annotations).
    pub fn peak_used(&self) -> u32 {
        self.peak_used
    }

    /// Number of jobs waiting in the queue.
    pub fn queued(&self) -> usize {
        self.fifo.len()
    }

    /// Number of running jobs.
    pub fn running(&self) -> usize {
        self.jobs
            .values()
            .filter(|j| j.state == JobState::Running)
            .count()
    }

    fn try_start(&mut self) -> Vec<ClusterEvent> {
        let mut events = Vec::new();
        // Strict FIFO: the head blocks everything behind it.
        while let Some(&head) = self.fifo.front() {
            let nodes = self.jobs[&head].nodes;
            if nodes <= self.free_nodes {
                self.fifo.pop_front();
                self.free_nodes -= nodes;
                self.jobs.get_mut(&head).expect("queued job exists").state = JobState::Running;
                self.peak_used = self.peak_used.max(self.used_nodes());
                events.push(ClusterEvent::Started(head));
            } else {
                break;
            }
        }
        events
    }

    /// Submits a job requesting `nodes` nodes.
    ///
    /// # Panics
    /// Panics if the id is already known, or if the request exceeds the
    /// cluster size (it could never start — a driver configuration bug).
    pub fn submit(&mut self, id: JobId, nodes: u32) -> Vec<ClusterEvent> {
        assert!(
            !self.jobs.contains_key(&id),
            "duplicate job id {id:?} submitted"
        );
        assert!(
            nodes >= 1 && nodes <= self.total_nodes,
            "job {id:?} requests {nodes} nodes on a {}-node cluster",
            self.total_nodes
        );
        self.jobs.insert(
            id,
            Job {
                nodes,
                state: JobState::Queued,
            },
        );
        self.fifo.push_back(id);
        self.try_start()
    }

    /// Marks a running job finished, freeing its nodes and possibly
    /// starting queued jobs.
    ///
    /// # Panics
    /// Panics if the job is unknown or not running.
    pub fn finish(&mut self, id: JobId) -> Vec<ClusterEvent> {
        let job = self.jobs.remove(&id).expect("finish of unknown job");
        assert_eq!(job.state, JobState::Running, "finish of queued job {id:?}");
        self.free_nodes += job.nodes;
        self.try_start()
    }

    /// Cancels a job: removes it from the queue, or frees its nodes if
    /// running. Unknown ids are tolerated (the kill may race completion).
    pub fn cancel(&mut self, id: JobId) -> Vec<ClusterEvent> {
        match self.jobs.remove(&id) {
            Some(job) => match job.state {
                JobState::Queued => {
                    self.fifo.retain(|&j| j != id);
                    // Head removal may unblock the queue.
                    self.try_start()
                }
                JobState::Running => {
                    self.free_nodes += job.nodes;
                    self.try_start()
                }
            },
            None => Vec::new(),
        }
    }

    /// Is the job currently running?
    pub fn is_running(&self, id: JobId) -> bool {
        self.jobs
            .get(&id)
            .is_some_and(|j| j.state == JobState::Running)
    }

    /// Is the job queued (submitted but not started)?
    pub fn is_queued(&self, id: JobId) -> bool {
        self.jobs
            .get(&id)
            .is_some_and(|j| j.state == JobState::Queued)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediate_start_when_free() {
        let mut c = Cluster::new(10);
        let ev = c.submit(JobId(1), 4);
        assert_eq!(ev, vec![ClusterEvent::Started(JobId(1))]);
        assert_eq!(c.free_nodes(), 6);
        assert!(c.is_running(JobId(1)));
    }

    #[test]
    fn queueing_when_full() {
        let mut c = Cluster::new(10);
        c.submit(JobId(1), 8);
        let ev = c.submit(JobId(2), 4);
        assert!(ev.is_empty());
        assert!(c.is_queued(JobId(2)));
        let ev = c.finish(JobId(1));
        assert_eq!(ev, vec![ClusterEvent::Started(JobId(2))]);
        assert_eq!(c.free_nodes(), 6);
    }

    #[test]
    fn fifo_head_blocks_smaller_jobs() {
        let mut c = Cluster::new(10);
        c.submit(JobId(1), 8);
        c.submit(JobId(2), 8); // queued, blocks
        let ev = c.submit(JobId(3), 1); // would fit, but FIFO
        assert!(ev.is_empty(), "no backfill");
        let ev = c.finish(JobId(1));
        assert_eq!(
            ev,
            vec![ClusterEvent::Started(JobId(2)), ClusterEvent::Started(JobId(3))],
            "head starts, then the small job behind it"
        );
    }

    #[test]
    fn cancel_queued_unblocks() {
        let mut c = Cluster::new(10);
        c.submit(JobId(1), 8);
        c.submit(JobId(2), 8);
        c.submit(JobId(3), 2);
        let ev = c.cancel(JobId(2));
        assert_eq!(ev, vec![ClusterEvent::Started(JobId(3))]);
    }

    #[test]
    fn cancel_running_frees_nodes() {
        let mut c = Cluster::new(10);
        c.submit(JobId(1), 10);
        c.submit(JobId(2), 5);
        let ev = c.cancel(JobId(1));
        assert_eq!(ev, vec![ClusterEvent::Started(JobId(2))]);
        assert_eq!(c.used_nodes(), 5);
    }

    #[test]
    fn cancel_unknown_is_noop() {
        let mut c = Cluster::new(4);
        assert!(c.cancel(JobId(99)).is_empty());
    }

    #[test]
    fn peak_usage_tracked() {
        let mut c = Cluster::new(100);
        c.submit(JobId(1), 30);
        c.submit(JobId(2), 50);
        c.finish(JobId(1));
        c.finish(JobId(2));
        assert_eq!(c.peak_used(), 80);
        assert_eq!(c.used_nodes(), 0);
    }

    #[test]
    #[should_panic(expected = "requests")]
    fn oversized_request_panics() {
        let mut c = Cluster::new(4);
        c.submit(JobId(1), 5);
    }

    #[test]
    #[should_panic(expected = "duplicate job id")]
    fn duplicate_id_panics() {
        let mut c = Cluster::new(4);
        c.submit(JobId(1), 1);
        c.submit(JobId(1), 1);
    }

    #[test]
    fn node_accounting_is_conserved() {
        let mut c = Cluster::new(16);
        // Random-ish churn with deterministic pattern.
        for round in 0..50u64 {
            let id = JobId(round);
            c.submit(id, 1 + (round % 5) as u32);
            if round % 3 == 0 && c.is_running(id) {
                c.finish(id);
            } else if round % 7 == 0 {
                c.cancel(id);
            }
            let running_nodes: u32 = c
                .jobs
                .values()
                .filter(|j| j.state == JobState::Running)
                .map(|j| j.nodes)
                .sum();
            assert_eq!(running_nodes, c.used_nodes());
            assert_eq!(c.free_nodes() + c.used_nodes(), 16);
        }
    }
}
