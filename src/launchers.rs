//! [`KernelLauncher`]: runs real simulation kernels in-process.
//!
//! The production path launches `simfs-simd` as an OS process through
//! [`simbatch::ProcessLauncher`]. For examples, tests, and
//! single-machine use, `KernelLauncher` provides the same behaviour —
//! load the restart file, step the kernel, publish output steps, notify
//! the DV — as a thread inside the daemon's process. The protocol
//! traffic is identical (it connects to the daemon over TCP like any
//! simulator), only the process boundary is removed.

use simbatch::{JobHandle, JobId, JobLauncher, SpawnSpec};
use simfs_core::client::SimulatorSession;
use simfs_core::server::env_keys;
use simstore::{Dataset, StorageArea};
use simulators::{build_sim, SimKind};
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// In-process launcher around a [`simulators::SimKind`] kernel.
pub struct KernelLauncher {
    kind: SimKind,
    /// Timesteps per output step.
    dd: u64,
    /// Timesteps per restart step.
    dr: u64,
    /// Emulated production interval per output step.
    tau: Duration,
    /// Emulated restart latency.
    alpha: Duration,
    kills: Mutex<HashMap<JobId, Arc<AtomicBool>>>,
}

impl KernelLauncher {
    /// A launcher for the given kernel and cadence; `alpha`/`tau` pace
    /// the production so experiments exercise the prefetch machinery.
    pub fn new(kind: SimKind, dd: u64, dr: u64, alpha: Duration, tau: Duration) -> KernelLauncher {
        assert!(dd > 0 && dr.is_multiple_of(dd), "Δr must be a multiple of Δd");
        KernelLauncher {
            kind,
            dd,
            dr,
            tau,
            alpha,
            kills: Mutex::new(HashMap::new()),
        }
    }

    fn arg(spec: &SpawnSpec, flag: &str) -> Option<u64> {
        let pos = spec.args.iter().position(|a| a == flag)?;
        spec.args.get(pos + 1)?.parse().ok()
    }

    fn env_of<'a>(spec: &'a SpawnSpec, key: &str) -> Option<&'a str> {
        spec.env.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

impl JobLauncher for KernelLauncher {
    fn launch(&self, job: JobId, spec: &SpawnSpec) -> io::Result<JobHandle> {
        let invalid = |msg: &str| io::Error::new(io::ErrorKind::InvalidInput, msg.to_string());
        let start = Self::arg(spec, "--start-key").ok_or_else(|| invalid("missing --start-key"))?;
        let stop = Self::arg(spec, "--stop-key").ok_or_else(|| invalid("missing --stop-key"))?;
        let addr = Self::env_of(spec, env_keys::DV_ADDR)
            .ok_or_else(|| invalid("missing DV addr"))?
            .to_string();
        let sim_id: u64 = Self::env_of(spec, env_keys::SIM_ID)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| invalid("missing sim id"))?;
        let context = Self::env_of(spec, env_keys::CONTEXT).unwrap_or("").to_string();
        let data_dir = Self::env_of(spec, env_keys::DATA_DIR)
            .ok_or_else(|| invalid("missing data dir"))?
            .to_string();

        let killed = Arc::new(AtomicBool::new(false));
        self.kills
            .lock()
            .expect("kernel launcher lock")
            .insert(job, Arc::clone(&killed));

        let (kind, dd, dr, tau, alpha) = (self.kind, self.dd, self.dr, self.tau, self.alpha);
        std::thread::spawn(move || {
            let run = || -> io::Result<()> {
                let area = StorageArea::create(&data_dir, u64::MAX)?;
                let b = dr / dd;
                let restart_j = if start % b == 0 && start == stop {
                    start / b
                } else {
                    (start - 1) / b
                };
                let restart_bytes = area.read(&format!("restart-{restart_j:06}.sdf"))?;
                let restart = Dataset::decode(&restart_bytes).map_err(io::Error::other)?;
                let mut sim = build_sim(kind, 0);
                sim.load_restart(&restart).map_err(io::Error::other)?;

                let mut session = SimulatorSession::connect(&addr, &context, sim_id)?;
                std::thread::sleep(alpha);
                session.started()?;

                let mut publish = |key: u64,
                                   sim: &mut Box<dyn simulators::RestartableSim + Send>|
                 -> io::Result<()> {
                    std::thread::sleep(tau);
                    let bytes = sim.output().encode();
                    let size = area.publish(&format!("out-{key:06}.sdf"), &bytes)?;
                    session.file_produced(key, size)
                };

                if sim.timestep() == start * dd && start == stop {
                    publish(start, &mut sim)?;
                } else {
                    let stop_t = stop * dd;
                    while sim.timestep() < stop_t {
                        if killed.load(Ordering::SeqCst) {
                            return Ok(()); // vanish: DV already dropped us
                        }
                        sim.step();
                        let t = sim.timestep();
                        if t.is_multiple_of(dd) && t / dd >= start {
                            publish(t / dd, &mut sim)?;
                        }
                    }
                }
                session.finished()
            };
            let _ = run();
        });
        Ok(JobHandle { job, pid: 0 })
    }

    fn kill(&self, job: JobId) -> io::Result<()> {
        if let Some(flag) = self.kills.lock().expect("kernel launcher lock").remove(&job) {
            flag.store(true, Ordering::SeqCst);
        }
        Ok(())
    }

    fn reap(&self) -> Vec<(JobId, bool)> {
        Vec::new()
    }
}
