//! The synthetic simulator (§VI, Figs. 17/19).
//!
//! "We use a synthetic simulator that can be configured to produce
//! output steps at a given rate (i.e., 1/tau_sim) and after a given
//! restart latency." Timing is imposed by the harness (virtual time) or
//! the `simfs-simd` binary (wall-clock sleeps); the state here is a
//! deterministic counter-derived field so output files have verifiable,
//! step-dependent content.

use crate::{RestartableSim, SimError};
use simstore::{Data, Dataset};

/// Deterministic stand-in simulator: the field at timestep `t` is a pure
/// function of `(seed, t)`.
#[derive(Clone, Debug)]
pub struct SyntheticSim {
    seed: u64,
    timestep: u64,
    field_len: usize,
}

const NAME: &str = "synthetic";

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SyntheticSim {
    /// A synthetic simulator with a 64-element field.
    pub fn new(seed: u64) -> Self {
        Self::with_field_len(seed, 64)
    }

    /// A synthetic simulator with a custom field size (bytes of output
    /// scale with it — useful for storage-pressure tests).
    pub fn with_field_len(seed: u64, field_len: usize) -> Self {
        SyntheticSim {
            seed,
            timestep: 0,
            field_len,
        }
    }

    fn field_at(&self, t: u64) -> Vec<f64> {
        (0..self.field_len as u64)
            .map(|i| {
                let bits = splitmix64(self.seed ^ t.wrapping_mul(0x9E37_79B9) ^ i);
                // Map to [0, 1): deterministic, portable.
                (bits >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }
}

impl RestartableSim for SyntheticSim {
    fn name(&self) -> &'static str {
        NAME
    }

    fn step(&mut self) {
        self.timestep += 1;
    }

    fn timestep(&self) -> u64 {
        self.timestep
    }

    fn save_restart(&self) -> Dataset {
        let mut ds = Dataset::new(self.timestep, self.timestep as f64);
        ds.set_attr("simulator", NAME);
        ds.set_attr("seed", self.seed.to_string());
        ds.set_attr("field_len", self.field_len.to_string());
        ds
    }

    fn load_restart(&mut self, restart: &Dataset) -> Result<(), SimError> {
        if restart.attr("simulator") != Some(NAME) {
            return Err(SimError::RestartMismatch(format!(
                "expected {NAME}, found {:?}",
                restart.attr("simulator")
            )));
        }
        let seed: u64 = restart
            .attr("seed")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| SimError::RestartMismatch("missing seed".into()))?;
        let field_len: usize = restart
            .attr("field_len")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| SimError::RestartMismatch("missing field_len".into()))?;
        self.seed = seed;
        self.field_len = field_len;
        self.timestep = restart.step_index;
        Ok(())
    }

    fn output(&self) -> Dataset {
        let mut ds = Dataset::new(self.timestep, self.timestep as f64);
        ds.set_attr("simulator", NAME);
        let field = self.field_at(self.timestep);
        ds.add_var("field", vec![self.field_len as u64], Data::F64(field))
            .expect("field shape is consistent");
        ds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_depends_on_timestep() {
        let mut sim = SyntheticSim::new(7);
        let d0 = sim.output().digest();
        sim.step();
        let d1 = sim.output().digest();
        assert_ne!(d0, d1);
    }

    #[test]
    fn output_depends_on_seed() {
        let a = SyntheticSim::new(1).output().digest();
        let b = SyntheticSim::new(2).output().digest();
        assert_ne!(a, b);
    }

    #[test]
    fn restart_roundtrip_is_exact() {
        let mut sim = SyntheticSim::with_field_len(3, 16);
        for _ in 0..5 {
            sim.step();
        }
        let restart = sim.save_restart();
        let mut replay = SyntheticSim::new(0);
        replay.load_restart(&restart).unwrap();
        assert_eq!(replay.timestep(), 5);
        assert_eq!(replay.output().encode(), sim.output().encode());
    }

    #[test]
    fn field_values_are_unit_interval() {
        let sim = SyntheticSim::new(11);
        let out = sim.output();
        let field = out.var("field").unwrap().data.as_f64().unwrap();
        assert!(field.iter().all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn wrong_restart_rejected() {
        let mut sim = SyntheticSim::new(1);
        let mut bogus = Dataset::new(3, 3.0);
        bogus.set_attr("simulator", "heat2d");
        assert!(matches!(
            sim.load_restart(&bogus),
            Err(SimError::RestartMismatch(_))
        ));
    }
}
