//! Offline drop-in subset of the `parking_lot` crate.
//!
//! Wraps the standard-library synchronization primitives behind
//! `parking_lot`'s poison-free API: `lock()` / `read()` / `write()`
//! return guards directly instead of `Result`s. A thread that panicked
//! while holding a lock does not poison it for everyone else — the DV
//! daemon treats per-connection panics as that session's problem, not
//! a process-wide one. See `vendor/README.md` for why dependencies are
//! vendored.

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion without lock poisoning.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Panics in other
    /// holders do not poison the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// Reader-writer lock without lock poisoning.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_survives_holder_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("holder dies");
        })
        .join();
        // parking_lot semantics: no poisoning.
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
