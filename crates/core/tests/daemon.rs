//! End-to-end daemon tests: the Fig. 4 protocol over real TCP sockets
//! with in-thread simulator jobs.

use simbatch::ParallelismMap;
use simfs_core::client::SimfsClient;
use simfs_core::driver::{PatternDriver, SimDriver};
use simfs_core::intercept::{netcdf, VirtualFs};
use simfs_core::model::{ContextCfg, StepMath};
use simfs_core::server::{ClusterMember, DurabilityCfg, DvServer, ServerConfig, ThreadSimLauncher};
use simstore::{Data, Dataset, StorageArea};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

fn step_bytes(key: u64) -> Vec<u8> {
    let mut ds = Dataset::new(key, key as f64);
    ds.set_attr("simulator", "synthetic");
    let field: Vec<f64> = (0..16).map(|i| (key * 31 + i) as f64).collect();
    ds.add_var("field", vec![16], Data::F64(field)).unwrap();
    ds.encode().to_vec()
}

struct Fixture {
    server: DvServer,
    storage: StorageArea,
    driver: Arc<PatternDriver>,
    _dir: std::path::PathBuf,
}

/// Starts an unsharded (one DV shard) daemon over a fresh storage
/// area. B = 4, N = 64 output steps, cache of `cache_steps` steps,
/// checksums recorded for keys 1..=8, prefetching on (agents observe
/// through the access-stream digest; hits serve through the lock-free
/// fast path in every configuration).
fn start_daemon(tag: &str, cache_steps: u64, smax: u32) -> Fixture {
    start_daemon_cfg(tag, cache_steps, smax, 1, true)
}

/// [`start_daemon`] with explicit DV shard count and prefetch switch.
fn start_daemon_cfg(
    tag: &str,
    cache_steps: u64,
    smax: u32,
    dv_shards: u32,
    prefetch: bool,
) -> Fixture {
    let dir = std::env::temp_dir().join(format!(
        "simfs-daemon-{}-{}-{:?}",
        tag,
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let storage = StorageArea::create(&dir, u64::MAX).unwrap();
    let driver = Arc::new(
        PatternDriver::new("out-", ".sdf", 6)
            .with_parallelism(ParallelismMap::unconstrained(1, 2)),
    );

    let size = step_bytes(1).len() as u64;
    let steps = StepMath::new(1, 4, 64);
    let ctx = ContextCfg::new("test-ctx", steps, size, cache_steps * size)
        .with_policy("dcl")
        .with_smax(smax)
        .with_prefetch(prefetch);

    let checksums: HashMap<u64, u64> = (1..=8)
        .map(|k| (k, simstore::fnv1a64(&step_bytes(k))))
        .collect();

    let launcher = Arc::new(ThreadSimLauncher::new(
        step_bytes,
        |key| PatternDriver::new("out-", ".sdf", 6).filename_of(key),
        Duration::from_millis(5),
        Duration::from_millis(2),
    ));
    let server = DvServer::start(
        ServerConfig {
            ctx,
            driver: driver.clone(),
            storage: storage.clone(),
            launcher,
            checksums,
            dv_shards,
            cluster: ClusterMember::SOLO,
            durability: DurabilityCfg::default(),
        },
        "127.0.0.1:0",
    )
    .unwrap();
    Fixture {
        server,
        storage,
        driver,
        _dir: dir,
    }
}

#[test]
fn miss_triggers_resimulation_and_unblocks_client() {
    let fx = start_daemon("miss", 1000, 4);
    let mut client = SimfsClient::connect(fx.server.addr(), "test-ctx").unwrap();
    assert!(!fx.storage.exists("out-000006.sdf"));
    let status = client.acquire(&[6]).unwrap();
    assert!(status.ok(), "{status:?}");
    assert_eq!(status.ready, vec![6]);
    // The whole enclosing interval 5..=8 was materialized (§II-A).
    for k in 5..=8 {
        assert!(fx.storage.exists(&fx.driver.filename_of(k)), "key {k}");
    }
    let stats = fx.server.stats();
    assert_eq!(stats.misses, 1);
    assert!(stats.restarts >= 1);
    client.finalize().unwrap();
}

#[test]
fn second_acquire_is_a_hit() {
    let fx = start_daemon("hit", 1000, 4);
    let mut client = SimfsClient::connect(fx.server.addr(), "test-ctx").unwrap();
    client.acquire(&[10]).unwrap();
    client.release(10).unwrap();
    let status = client.acquire(&[10]).unwrap();
    assert!(status.ok());
    let stats = fx.server.stats();
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.misses, 1);
    client.finalize().unwrap();
}

#[test]
fn nonblocking_acquire_with_wait_and_test() {
    let fx = start_daemon("nb", 1000, 4);
    let mut client = SimfsClient::connect(fx.server.addr(), "test-ctx").unwrap();
    let mut req = client.acquire_nb(&[2, 3]).unwrap();
    assert!(!req.done());
    // test() polls without blocking until production completes.
    let mut done = false;
    for _ in 0..2_000 {
        let (d, _) = client.test(&mut req).unwrap();
        if d {
            done = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(done, "re-simulation never completed");
    let status = client.wait(&mut req).unwrap();
    let mut ready = status.ready.clone();
    ready.sort_unstable();
    assert_eq!(ready, vec![2, 3]);
    client.finalize().unwrap();
}

#[test]
fn waitsome_reports_incremental_availability() {
    let fx = start_daemon("waitsome", 1000, 4);
    let mut client = SimfsClient::connect(fx.server.addr(), "test-ctx").unwrap();
    let mut req = client.acquire_nb(&[1, 2, 3, 4]).unwrap();
    let mut resolved = 0;
    while !req.done() {
        let status = client.waitsome(&mut req).unwrap();
        let now_resolved = status.ready.len() + status.failed.len();
        assert!(now_resolved > resolved, "waitsome must make progress");
        resolved = now_resolved;
    }
    assert_eq!(resolved, 4);
    client.finalize().unwrap();
}

#[test]
fn out_of_timeline_key_fails_cleanly() {
    let fx = start_daemon("invalid", 1000, 4);
    let mut client = SimfsClient::connect(fx.server.addr(), "test-ctx").unwrap();
    let status = client.acquire(&[9999]).unwrap();
    assert!(!status.ok());
    assert_eq!(status.failed.len(), 1);
    assert_eq!(status.failed[0].0, 9999);
    client.finalize().unwrap();
}

#[test]
fn bitrep_validates_resimulated_output() {
    let fx = start_daemon("bitrep", 1000, 4);
    let mut client = SimfsClient::connect(fx.server.addr(), "test-ctx").unwrap();
    client.acquire(&[3]).unwrap();
    // Keys 1..=8 have recorded checksums; the deterministic simulator
    // reproduces them bitwise.
    assert_eq!(client.bitrep(3).unwrap(), Some(true));
    // Key 20 has no recorded checksum.
    client.acquire(&[20]).unwrap();
    assert_eq!(client.bitrep(20).unwrap(), None);
    client.finalize().unwrap();
}

#[test]
fn bitrep_detects_corruption() {
    let fx = start_daemon("bitrep2", 1000, 4);
    let mut client = SimfsClient::connect(fx.server.addr(), "test-ctx").unwrap();
    client.acquire(&[5]).unwrap();
    // Corrupt the file on disk behind the DV's back.
    let name = fx.driver.filename_of(5);
    let mut bytes = fx.storage.read(&name).unwrap();
    bytes[10] ^= 0xFF;
    fx.storage.publish(&name, &bytes).unwrap();
    assert_eq!(client.bitrep(5).unwrap(), Some(false));
    client.finalize().unwrap();
}

#[test]
fn eviction_deletes_files_under_pressure() {
    // Cache of 4 steps only.
    let fx = start_daemon("evict", 4, 4);
    let mut client = SimfsClient::connect(fx.server.addr(), "test-ctx").unwrap();
    client.acquire(&[2]).unwrap(); // materializes 1..=4
    client.release(2).unwrap();
    client.acquire(&[6]).unwrap(); // materializes 5..=8, evicting 1..=4
    client.release(6).unwrap();
    // Give eviction deletions a moment.
    std::thread::sleep(Duration::from_millis(50));
    let on_disk: Vec<String> = fx.storage.list().unwrap();
    assert!(
        on_disk.len() <= 5,
        "storage area should stay near budget: {on_disk:?}"
    );
    let stats = fx.server.stats();
    assert!(stats.evictions >= 3, "evictions: {}", stats.evictions);
    client.finalize().unwrap();
}

#[test]
fn pinned_files_survive_pressure() {
    let fx = start_daemon("pins", 4, 4);
    let mut client = SimfsClient::connect(fx.server.addr(), "test-ctx").unwrap();
    client.acquire(&[2]).unwrap(); // pin on 2
    client.acquire(&[6]).unwrap(); // pressure
    std::thread::sleep(Duration::from_millis(50));
    assert!(
        fx.storage.exists(&fx.driver.filename_of(2)),
        "pinned step deleted"
    );
    client.finalize().unwrap();
}

#[test]
fn two_clients_share_one_resimulation() {
    let fx = start_daemon("share", 1000, 4);
    let mut a = SimfsClient::connect(fx.server.addr(), "test-ctx").unwrap();
    let mut b = SimfsClient::connect(fx.server.addr(), "test-ctx").unwrap();
    let mut ra = a.acquire_nb(&[13]).unwrap();
    let mut rb = b.acquire_nb(&[14]).unwrap();
    let sa = a.wait(&mut ra).unwrap();
    let sb = b.wait(&mut rb).unwrap();
    assert!(sa.ok() && sb.ok());
    let stats = fx.server.stats();
    assert_eq!(
        stats.restarts, 1,
        "both keys in interval 13..=16: one restart"
    );
    a.finalize().unwrap();
    b.finalize().unwrap();
}

#[test]
fn transparent_mode_open_read_close() {
    let fx = start_daemon("vfs", 1000, 4);
    let client = SimfsClient::connect(fx.server.addr(), "test-ctx").unwrap();
    let mut vfs = VirtualFs::new(client, fx.driver.clone(), fx.storage.clone());
    assert!(!vfs.is_materialized("out-000007.sdf"));
    // Table I facade: nc_open blocks through the re-simulation.
    let ds = netcdf::nc_open(&mut vfs, "out-000007.sdf").unwrap();
    assert_eq!(ds.step_index, 7);
    let field = netcdf::nc_vara_get_double(&ds, "field").unwrap();
    assert_eq!(field.len(), 16);
    assert_eq!(field[0], (7 * 31) as f64);
    netcdf::nc_close(&mut vfs, "out-000007.sdf").unwrap();
    assert!(vfs.is_materialized("out-000007.sdf"));
    // Foreign names are rejected, not silently passed through.
    assert!(vfs.open("weird-name.nc").is_err());
    vfs.finalize().unwrap();
}

#[test]
fn daemon_restart_reprimes_existing_files() {
    let fx = start_daemon("prime", 1000, 4);
    let addr_dir = fx._dir.clone();
    {
        let mut client = SimfsClient::connect(fx.server.addr(), "test-ctx").unwrap();
        client.acquire(&[9]).unwrap();
        client.release(9).unwrap();
        client.finalize().unwrap();
    }
    fx.server.shutdown();
    drop(fx.server);

    // New daemon over the same storage area: files must be hits.
    let storage = StorageArea::create(&addr_dir, u64::MAX).unwrap();
    let size = step_bytes(1).len() as u64;
    let ctx = ContextCfg::new("test-ctx", StepMath::new(1, 4, 64), size, 1000 * size);
    let launcher = Arc::new(ThreadSimLauncher::new(
        step_bytes,
        |key| PatternDriver::new("out-", ".sdf", 6).filename_of(key),
        Duration::from_millis(5),
        Duration::from_millis(2),
    ));
    let server = DvServer::start(
        ServerConfig {
            ctx,
            driver: Arc::new(PatternDriver::new("out-", ".sdf", 6)),
            storage,
            launcher,
            checksums: HashMap::new(),
            dv_shards: 1,
            cluster: ClusterMember::SOLO,
            durability: DurabilityCfg::default(),
        },
        "127.0.0.1:0",
    )
    .unwrap();
    let mut client = SimfsClient::connect(server.addr(), "test-ctx").unwrap();
    let status = client.acquire(&[9]).unwrap();
    assert!(status.ok());
    assert_eq!(server.stats().hits, 1, "primed file served without restart");
    assert_eq!(server.stats().restarts, 0);
    client.finalize().unwrap();
}

#[test]
fn abrupt_disconnect_releases_pins() {
    let fx = start_daemon("gone", 4, 4);
    {
        let mut client = SimfsClient::connect(fx.server.addr(), "test-ctx").unwrap();
        client.acquire(&[2]).unwrap();
        // Dropped without release/finalize: TCP close triggers
        // ClientGone.
    }
    std::thread::sleep(Duration::from_millis(50));
    // A second client can now flood the cache past key 2's pins.
    let mut other = SimfsClient::connect(fx.server.addr(), "test-ctx").unwrap();
    other.acquire(&[6]).unwrap();
    other.release(6).unwrap();
    other.acquire(&[10]).unwrap();
    std::thread::sleep(Duration::from_millis(50));
    assert!(
        !fx.storage.exists(&fx.driver.filename_of(2)),
        "departed client's pin must not persist"
    );
    other.finalize().unwrap();
}

#[test]
fn multi_context_daemon_routes_by_name() {
    // Two contexts with distinct cadences and storage areas on ONE
    // daemon (§II "Simulation Contexts").
    let dir_a = std::env::temp_dir().join(format!("simfs-multi-a-{}", std::process::id()));
    let dir_b = std::env::temp_dir().join(format!("simfs-multi-b-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
    let storage_a = StorageArea::create(&dir_a, u64::MAX).unwrap();
    let storage_b = StorageArea::create(&dir_b, u64::MAX).unwrap();
    let size = step_bytes(1).len() as u64;

    let mk_launcher = || {
        Arc::new(ThreadSimLauncher::new(
            step_bytes,
            |key| PatternDriver::new("out-", ".sdf", 6).filename_of(key),
            Duration::from_millis(3),
            Duration::from_millis(1),
        ))
    };
    let coarse = simfs_core::server::ServerConfig {
        ctx: ContextCfg::new("coarse", StepMath::new(1, 4, 64), size, 1000 * size),
        driver: Arc::new(PatternDriver::new("out-", ".sdf", 6)),
        storage: storage_a.clone(),
        launcher: mk_launcher(),
        checksums: HashMap::new(),
        dv_shards: 1,
        cluster: ClusterMember::SOLO,
        durability: simfs_core::server::DurabilityCfg::default(),
    };
    let fine = simfs_core::server::ServerConfig {
        ctx: ContextCfg::new("fine", StepMath::new(1, 8, 128), size, 1000 * size),
        driver: Arc::new(PatternDriver::new("out-", ".sdf", 6)),
        storage: storage_b.clone(),
        launcher: mk_launcher(),
        checksums: HashMap::new(),
        dv_shards: 1,
        cluster: ClusterMember::SOLO,
        durability: simfs_core::server::DurabilityCfg::default(),
    };
    let server = DvServer::start_multi(vec![coarse, fine], "127.0.0.1:0").unwrap();
    assert_eq!(server.context_names(), vec!["coarse", "fine"]);

    // Each client lands in its own context; files go to the right area.
    let mut ca = SimfsClient::connect(server.addr(), "coarse").unwrap();
    let mut cb = SimfsClient::connect(server.addr(), "fine").unwrap();
    assert!(ca.acquire(&[2]).unwrap().ok());
    assert!(cb.acquire(&[2]).unwrap().ok());
    assert!(storage_a.exists("out-000002.sdf"));
    assert!(storage_b.exists("out-000002.sdf"));

    // The acquires return as soon as key 2 is ready; the launched sims
    // keep producing the rest of their intervals. Wait for quiescence
    // before asserting totals.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let (mut sa, mut sb) = (
        server.context_stats("coarse").unwrap(),
        server.context_stats("fine").unwrap(),
    );
    while (sa.produced_steps, sb.produced_steps) != (4, 8)
        && std::time::Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(5));
        sa = server.context_stats("coarse").unwrap();
        sb = server.context_stats("fine").unwrap();
    }
    // Different cadences: coarse interval is 1..=4, fine is 1..=8.
    assert!(!storage_a.exists("out-000008.sdf"));
    assert!(storage_b.exists("out-000008.sdf"));
    assert_eq!(sa.misses, 1);
    assert_eq!(sb.misses, 1);
    assert_eq!(sa.produced_steps, 4);
    assert_eq!(sb.produced_steps, 8);

    ca.finalize().unwrap();
    cb.finalize().unwrap();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

#[test]
fn unknown_context_is_rejected_with_listing() {
    let fx = start_daemon("unknown-ctx", 100, 2);
    let err = match SimfsClient::connect(fx.server.addr(), "no-such-context") {
        Ok(_) => panic!("connect to unknown context must fail"),
        Err(e) => e,
    };
    let msg = err.to_string();
    assert!(msg.contains("unknown simulation context"), "{msg}");
    assert!(msg.contains("test-ctx"), "must list available contexts: {msg}");
}

#[test]
fn status_query_reports_runtime_counters() {
    let fx = start_daemon("status", 100, 2);
    let mut client = SimfsClient::connect(fx.server.addr(), "test-ctx").unwrap();
    let s0 = client.status().unwrap();
    assert_eq!(s0.hits + s0.misses, 0);
    client.acquire(&[6]).unwrap();
    let s1 = client.status().unwrap();
    assert_eq!(s1.misses, 1);
    assert_eq!(s1.restarts, 1);
    assert!(s1.produced_steps >= 1);
    client.finalize().unwrap();
}

#[test]
fn malformed_frames_drop_session_without_crashing_daemon() {
    use std::io::Write;
    let fx = start_daemon("garbage", 100, 2);
    // A raw socket that handshakes properly, then sends byte soup.
    {
        let mut rogue = std::net::TcpStream::connect(fx.server.addr()).unwrap();
        simfs_core::wire::write_frame(
            &mut rogue,
            &simfs_core::wire::Request::Hello {
                kind: simfs_core::wire::ClientKind::Analysis,
                context: "test-ctx".into(),
                membership: None,
            epoch: None,
            }
            .encode(),
        )
        .unwrap();
        let _ = simfs_core::wire::read_frame(&mut rogue).unwrap();
        // Garbage frame: valid length prefix, invalid body.
        let body = [0xFFu8; 16];
        rogue.write_all(&(body.len() as u32).to_le_bytes()).unwrap();
        rogue.write_all(&body).unwrap();
        // And a torn frame: length promising more than we send.
        rogue.write_all(&100u32.to_le_bytes()).unwrap();
        rogue.write_all(&[1, 2, 3]).unwrap();
    }
    // The daemon must still serve well-behaved clients.
    let mut client = SimfsClient::connect(fx.server.addr(), "test-ctx").unwrap();
    let status = client.acquire(&[3]).unwrap();
    assert!(status.ok());
    client.finalize().unwrap();
}

#[test]
fn rogue_simulator_ids_do_not_corrupt_state() {
    // A "simulator" that was never launched reports productions for a
    // bogus sim id: the DV must ignore sim-level bookkeeping it does not
    // know, while still accepting the (real) file.
    let fx = start_daemon("rogue-sim", 100, 2);
    {
        let mut rogue = std::net::TcpStream::connect(fx.server.addr()).unwrap();
        simfs_core::wire::write_frame(
            &mut rogue,
            &simfs_core::wire::Request::Hello {
                kind: simfs_core::wire::ClientKind::Simulator { sim_id: 9999 },
                context: "test-ctx".into(),
                membership: None,
            epoch: None,
            }
            .encode(),
        )
        .unwrap();
        let _ = simfs_core::wire::read_frame(&mut rogue).unwrap();
        // Publish a real file then claim it.
        fx.storage.publish("out-000001.sdf", &step_bytes(1)).unwrap();
        simfs_core::wire::write_frame(
            &mut rogue,
            &simfs_core::wire::Request::FileProduced { key: 1, size: 10 }.encode(),
        )
        .unwrap();
        simfs_core::wire::write_frame(
            &mut rogue,
            &simfs_core::wire::Request::SimFinished.encode(),
        )
        .unwrap();
    }
    std::thread::sleep(Duration::from_millis(50));
    // Key 1 is now (legitimately) cached; a client acquire hits.
    let mut client = SimfsClient::connect(fx.server.addr(), "test-ctx").unwrap();
    let status = client.acquire(&[1]).unwrap();
    assert!(status.ok());
    assert_eq!(fx.server.stats().hits, 1);
    client.finalize().unwrap();
}

#[test]
fn fast_path_serves_hits_without_dv_lock() {
    // Prefetch off ⇒ the lock-free hit layer is active: a re-acquire
    // of a warm key must be served by the concurrent index (counted in
    // acquired_fast), while the first (miss) acquire goes through a
    // shard lock (acquired_slow). The full cycle — fast pin, fast
    // release, later eviction — must stay coherent.
    let fx = start_daemon_cfg("fastpath", 1000, 4, 1, false);
    let mut client = SimfsClient::connect(fx.server.addr(), "test-ctx").unwrap();
    let status = client.acquire(&[6]).unwrap();
    assert!(status.ok(), "{status:?}");
    client.release(6).unwrap();
    let status = client.acquire(&[6]).unwrap();
    assert!(status.ok());
    client.release(6).unwrap();
    let stats = fx.server.stats();
    assert_eq!(stats.hits, 1, "second acquire is the hit");
    assert_eq!(stats.acquired_fast, 1, "the hit came off the fast path");
    assert_eq!(stats.misses, 1);
    assert!(stats.acquired_slow >= 1, "the miss took a shard lock");
    assert!(
        stats.lock_transitions > 0 && stats.lock_hold_ns > 0,
        "lock hold-time counters must be live: {stats:?}"
    );
    client.finalize().unwrap();
}

#[test]
fn sharded_daemon_serves_misses_and_hits_across_shards() {
    // Four DV shards: intervals route round-robin, so keys 2, 6, 10,
    // 14 land on four distinct shards. Misses must launch per shard,
    // waiters must resolve, and merged stats must add up.
    let fx = start_daemon_cfg("sharded", 1000, 8, 4, false);
    let mut client = SimfsClient::connect(fx.server.addr(), "test-ctx").unwrap();
    let status = client.acquire(&[2, 6, 10, 14]).unwrap();
    assert!(status.ok(), "{status:?}");
    let mut ready = status.ready.clone();
    ready.sort_unstable();
    assert_eq!(ready, vec![2, 6, 10, 14]);
    for k in [2u64, 6, 10, 14] {
        client.release(k).unwrap();
        assert!(fx.storage.exists(&fx.driver.filename_of(k)), "key {k}");
    }
    // Re-acquire everything: all hits, all off the fast path.
    let status = client.acquire(&[2, 6, 10, 14]).unwrap();
    assert!(status.ok());
    let stats = fx.server.stats();
    assert_eq!(stats.misses, 4, "one miss per shard");
    assert_eq!(stats.restarts, 4, "one launch per interval");
    assert_eq!(stats.hits, 4);
    assert_eq!(stats.acquired_fast, 4);
    client.finalize().unwrap();
}

#[test]
fn hit_path_stress_races_acquires_against_evictions() {
    // The epoch-fallback scenario, stressed: a tiny cache (4 steps per
    // shard is far less than the 16 keys in play) keeps evicting warm
    // keys while several clients hammer hit-path acquires on them. A
    // fast pin must always win or cleanly fall back — every acquire
    // must succeed (possibly via a re-simulation), no response may be
    // lost, and the counters must account for every request.
    let fx = start_daemon_cfg("hitstress", 4, 8, 1, false);
    let addr = fx.server.addr();
    const HAMMERS: usize = 6;
    const HAMMER_ROUNDS: usize = 80;
    const FLOODS: usize = 2;
    const FLOOD_ROUNDS: usize = 30;
    const WARM: u64 = 8; // the hammered, mostly-resident zone
    const COLD_SPAN: u64 = 32; // flood walks 9..=40, forcing inserts
    {
        let mut warm = SimfsClient::connect(addr, "test-ctx").unwrap();
        let keys: Vec<u64> = (1..=WARM).collect();
        let status = warm.acquire(&keys).unwrap();
        assert!(status.ok(), "warmup failed: {status:?}");
        for k in 1..=WARM {
            warm.release(k).unwrap();
        }
        warm.finalize().unwrap();
    }
    let barrier = Arc::new(std::sync::Barrier::new(HAMMERS + FLOODS));
    let mut handles = Vec::new();
    for i in 0..HAMMERS {
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let mut client = SimfsClient::connect(addr, "test-ctx").unwrap();
            barrier.wait();
            let mut key = 1 + (i as u64 * 3) % WARM;
            for _ in 0..HAMMER_ROUNDS {
                let status = client.acquire(&[key]).unwrap();
                assert!(status.ok(), "hammer {i}: {status:?}");
                assert_eq!(status.ready, vec![key]);
                client.release(key).unwrap();
                key = 1 + key % WARM;
            }
            client.finalize().unwrap();
        }));
    }
    for i in 0..FLOODS {
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let mut client = SimfsClient::connect(addr, "test-ctx").unwrap();
            barrier.wait();
            let mut key = WARM + 1 + (i as u64 * 16) % COLD_SPAN;
            for _ in 0..FLOOD_ROUNDS {
                let status = client.acquire(&[key]).unwrap();
                assert!(status.ok(), "flood {i}: {status:?}");
                client.release(key).unwrap();
                key = WARM + 1 + (key - WARM) % COLD_SPAN;
            }
            client.finalize().unwrap();
        }));
    }
    for (i, handle) in handles.into_iter().enumerate() {
        handle.join().unwrap_or_else(|_| panic!("client {i} panicked"));
    }
    let stats = fx.server.stats();
    let total = WARM + (HAMMERS * HAMMER_ROUNDS + FLOODS * FLOOD_ROUNDS) as u64;
    assert_eq!(
        stats.hits + stats.misses,
        total,
        "every acquire must be accounted as hit or miss: {stats:?}"
    );
    assert!(stats.acquired_fast > 0, "fast path never engaged: {stats:?}");
    assert!(
        stats.evictions > 0,
        "cache pressure must have evicted: {stats:?}"
    );
    // Leak probe: every client is gone, so no fast pin may survive. A
    // leaked pin makes its key unevictable (the index vetoes
    // retirement), so flooding fresh intervals through the 4-step
    // cache would leave leaked keys stranded on disk alongside the new
    // residents. With clean accounting the area drains back to the
    // budget's neighbourhood.
    std::thread::sleep(Duration::from_millis(200));
    let mut probe = SimfsClient::connect(addr, "test-ctx").unwrap();
    for key in [41u64, 45, 49, 53] {
        let status = probe.acquire(&[key]).unwrap();
        assert!(status.ok(), "probe acquire of {key}: {status:?}");
        probe.release(key).unwrap();
    }
    probe.finalize().unwrap();
    std::thread::sleep(Duration::from_millis(200));
    let on_disk = fx.storage.list().unwrap();
    assert!(
        on_disk.len() <= 8,
        "storage should drain near the 4-step budget once all pins are \
         released; leaked fast pins would strand keys: {on_disk:?}"
    );
}

#[test]
fn socket_kill_mid_fast_pin_returns_pins_to_index() {
    // A client dies abruptly — no Release, no Bye — while holding a
    // fast-path pin. The reactor must return the connection's
    // thread-local fast-pin counts to the HitIndex when it tears the
    // connection down (before the DV-side ClientGone), otherwise
    // try_retire would veto eviction on pins owned by a dead client
    // forever.
    let fx = start_daemon_cfg("midpin-kill", 4, 4, 1, false);
    let addr = fx.server.addr();
    {
        // Warm key 2 so the kill victim's acquire is a fast-path hit.
        let mut warm = SimfsClient::connect(addr, "test-ctx").unwrap();
        let status = warm.acquire(&[2]).unwrap();
        assert!(status.ok(), "{status:?}");
        warm.release(2).unwrap();
        warm.finalize().unwrap();
    }
    {
        let mut victim = std::net::TcpStream::connect(addr).unwrap();
        victim.set_nodelay(true).unwrap();
        simfs_core::wire::write_frame(
            &mut victim,
            &simfs_core::wire::Request::Hello {
                kind: simfs_core::wire::ClientKind::Analysis,
                context: "test-ctx".into(),
                membership: None,
            epoch: None,
            }
            .encode(),
        )
        .unwrap();
        let _ = simfs_core::wire::read_frame(&mut victim).unwrap().unwrap(); // HelloOk
        simfs_core::wire::write_frame(
            &mut victim,
            &simfs_core::wire::Request::Acquire {
                req_id: 1,
                keys: vec![2],
            }
            .encode(),
        )
        .unwrap();
        let frame = simfs_core::wire::read_frame(&mut victim).unwrap().unwrap();
        match simfs_core::wire::Response::decode(&frame).unwrap() {
            simfs_core::wire::Response::Ready { key: 2, .. } => {}
            other => panic!("expected Ready for key 2, got {other:?}"),
        }
        // The pin is fast (taken through the index, visible to the
        // probe) and owned by this connection alone.
        assert_eq!(fx.server.fast_pinned("test-ctx", 2), Some(true));
        // Killed mid-pin: the stream drops here without Release or Bye.
    }
    // The reactor's teardown must drain the dead connection's fast
    // pins back into the index.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while fx.server.fast_pinned("test-ctx", 2) == Some(true) {
        assert!(
            std::time::Instant::now() < deadline,
            "fast pin stranded by the dead connection"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(fx.server.fast_pinned("test-ctx", 2), Some(false));
    // And the key is evictable again: flooding the 4-step cache with
    // two fresh intervals must push key 2's file out.
    let mut other = SimfsClient::connect(addr, "test-ctx").unwrap();
    for key in [6u64, 10] {
        let status = other.acquire(&[key]).unwrap();
        assert!(status.ok(), "{status:?}");
        other.release(key).unwrap();
    }
    other.flush().unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while fx.storage.exists(&fx.driver.filename_of(2)) {
        assert!(
            std::time::Instant::now() < deadline,
            "key 2 should be evictable once the dead client's pin drains"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    other.finalize().unwrap();
}

#[test]
fn dvlib_drop_flushes_staged_releases() {
    // `release` coalesces its frame into the next request's write; a
    // session dropped (or `close()`d) with frames still staged must
    // flush them best-effort instead of stranding daemon-side pins
    // until the hangup GC. A bare-wire "daemon" observes what actually
    // reaches the socket before EOF.
    use simfs_core::wire::{self, Request, Response};
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || -> Vec<u64> {
        let (mut sock, _) = listener.accept().unwrap();
        let hello = wire::read_frame(&mut sock).unwrap().unwrap();
        assert!(matches!(
            Request::decode(&hello).unwrap(),
            Request::Hello { .. }
        ));
        wire::write_frame(&mut sock, &Response::HelloOk { client_id: 7, epoch: 0 }.encode()).unwrap();
        let mut releases = Vec::new();
        while let Some(frame) = wire::read_frame(&mut sock).unwrap() {
            match Request::decode(&frame).unwrap() {
                Request::Release { key } => releases.push(key),
                other => panic!("expected only staged releases, got {other:?}"),
            }
        }
        releases
    });
    let mut client = SimfsClient::connect(addr, "any").unwrap();
    client.release(5).unwrap();
    client.release(9).unwrap();
    drop(client); // staged frames must hit the wire before the FIN
    assert_eq!(server.join().unwrap(), vec![5, 9]);
}

#[test]
fn explicit_close_flushes_staged_releases() {
    use simfs_core::wire::{self, Request, Response};
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || -> Vec<u64> {
        let (mut sock, _) = listener.accept().unwrap();
        let _ = wire::read_frame(&mut sock).unwrap().unwrap(); // Hello
        wire::write_frame(&mut sock, &Response::HelloOk { client_id: 8, epoch: 0 }.encode()).unwrap();
        let mut releases = Vec::new();
        while let Some(frame) = wire::read_frame(&mut sock).unwrap() {
            match Request::decode(&frame).unwrap() {
                Request::Release { key } => releases.push(key),
                other => panic!("expected only staged releases, got {other:?}"),
            }
        }
        releases
    });
    let mut client = SimfsClient::connect(addr, "any").unwrap();
    client.release(3).unwrap();
    client.close().unwrap();
    assert_eq!(server.join().unwrap(), vec![3]);
}

#[test]
fn epoll_frontend_serves_256_concurrent_clients() {
    // The headline capability of the reactor: hundreds of concurrent
    // analysis clients on a fixed daemon thread count. Every client
    // runs hit-path acquire/release rounds on warm keys; all must
    // complete without errors or lost responses.
    let fx = start_daemon("c256", 1000, 4);
    let addr = fx.server.addr();
    {
        // Warm keys 1..=8 so the measured traffic is pure control-path.
        let mut warm = SimfsClient::connect(addr, "test-ctx").unwrap();
        let status = warm.acquire(&[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        assert!(status.ok(), "warmup failed: {status:?}");
        for k in 1..=8 {
            warm.release(k).unwrap();
        }
        warm.finalize().unwrap();
    }
    const CLIENTS: usize = 256;
    const ROUNDS: usize = 4;
    let barrier = Arc::new(std::sync::Barrier::new(CLIENTS));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = SimfsClient::connect(addr, "test-ctx").unwrap();
                barrier.wait();
                let key = 1 + (i as u64 % 8);
                for _ in 0..ROUNDS {
                    let status = client.acquire(&[key]).unwrap();
                    assert!(status.ok(), "client {i}: {status:?}");
                    assert_eq!(status.ready, vec![key]);
                    client.release(key).unwrap();
                }
                client.finalize().unwrap();
            })
        })
        .collect();
    for (i, handle) in handles.into_iter().enumerate() {
        handle.join().unwrap_or_else(|_| panic!("client {i} panicked"));
    }
    // All 256 * 4 rounds were hits (keys stayed warm and pinned counts
    // returned to zero).
    let stats = fx.server.stats();
    assert!(
        stats.hits >= (CLIENTS * ROUNDS) as u64,
        "hits: {}",
        stats.hits
    );
}

#[test]
fn slow_client_never_stalls_others() {
    // Slowloris: a client dribbles one byte of an Acquire frame per
    // 10 ms. The reactor must (a) keep serving other clients at full
    // speed on the same shard set and (b) resume the partial frame and
    // answer it once it completes.
    use std::io::Write;
    use std::sync::atomic::{AtomicBool, Ordering};

    let fx = start_daemon("slowloris", 1000, 4);
    let addr = fx.server.addr();
    {
        let mut warm = SimfsClient::connect(addr, "test-ctx").unwrap();
        let status = warm.acquire(&[1, 2]).unwrap();
        assert!(status.ok());
        warm.release(1).unwrap();
        warm.release(2).unwrap();
        warm.finalize().unwrap();
    }

    // Handshake the slow connection properly, then dribble.
    let mut slow = std::net::TcpStream::connect(addr).unwrap();
    slow.set_nodelay(true).unwrap();
    simfs_core::wire::write_frame(
        &mut slow,
        &simfs_core::wire::Request::Hello {
            kind: simfs_core::wire::ClientKind::Analysis,
            context: "test-ctx".into(),
            membership: None,
            epoch: None,
        }
        .encode(),
    )
    .unwrap();
    let hello = simfs_core::wire::read_frame(&mut slow).unwrap().unwrap();
    assert!(matches!(
        simfs_core::wire::Response::decode(&hello).unwrap(),
        simfs_core::wire::Response::HelloOk { .. }
    ));

    let stop = Arc::new(AtomicBool::new(false));
    let fast = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut client = SimfsClient::connect(addr, "test-ctx").unwrap();
            let mut ops = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let status = client.acquire(&[1]).unwrap();
                assert!(status.ok());
                client.release(1).unwrap();
                ops += 1;
            }
            client.finalize().unwrap();
            ops
        })
    };

    // One byte per 10 ms: ~29 bytes ≈ 290 ms of dribbling.
    let body = simfs_core::wire::Request::Acquire {
        req_id: 77,
        keys: vec![2],
    }
    .encode();
    let mut frame = (body.len() as u32).to_le_bytes().to_vec();
    frame.extend_from_slice(&body);
    for byte in frame {
        slow.write_all(&[byte]).unwrap();
        std::thread::sleep(Duration::from_millis(10));
    }

    // The completed frame gets its answer (a Ready for key 2; the hit
    // path sends no Queued).
    let resp = simfs_core::wire::read_frame(&mut slow).unwrap().unwrap();
    match simfs_core::wire::Response::decode(&resp).unwrap() {
        simfs_core::wire::Response::Ready { req_id, key } => {
            assert_eq!((req_id, key), (77, 2));
        }
        other => panic!("expected Ready for the dribbled acquire, got {other:?}"),
    }

    stop.store(true, Ordering::Relaxed);
    let fast_ops = fast.join().unwrap();
    // Loopback hit-path round trips run in the tens of microseconds; if
    // the slow client had serialized the shard, the fast client would
    // have managed only a handful.
    assert!(
        fast_ops >= 50,
        "fast client starved behind the slow one: {fast_ops} ops in ~290 ms"
    );
}

#[test]
fn deep_pipelined_burst_is_fully_answered() {
    // 300 pipelined requests arrive in one TCP segment burst — more
    // than the reactor's per-wake dispatch cap. The capped remainder
    // sits in the userspace FrameReader where epoll cannot see it; the
    // shard's backlog pass must re-dispatch it, so every request gets
    // its response.
    use std::io::Write;
    let fx = start_daemon("burst", 1000, 4);
    let mut sock = std::net::TcpStream::connect(fx.server.addr()).unwrap();
    sock.set_nodelay(true).unwrap();
    simfs_core::wire::write_frame(
        &mut sock,
        &simfs_core::wire::Request::Hello {
            kind: simfs_core::wire::ClientKind::Analysis,
            context: "test-ctx".into(),
            membership: None,
            epoch: None,
        }
        .encode(),
    )
    .unwrap();
    let _ = simfs_core::wire::read_frame(&mut sock).unwrap().unwrap(); // HelloOk

    const BURST: u64 = 300;
    let mut pipelined = Vec::new();
    for req_id in 0..BURST {
        let body = simfs_core::wire::Request::Status { req_id }.encode();
        pipelined.extend_from_slice(&(body.len() as u32).to_le_bytes());
        pipelined.extend_from_slice(&body);
    }
    sock.write_all(&pipelined).unwrap();

    sock.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    for expect in 0..BURST {
        let frame = simfs_core::wire::read_frame(&mut sock)
            .unwrap_or_else(|e| panic!("response {expect} never arrived: {e}"))
            .unwrap_or_else(|| panic!("EOF before response {expect}"));
        match simfs_core::wire::Response::decode(&frame).unwrap() {
            simfs_core::wire::Response::StatusInfo { req_id, .. } => {
                assert_eq!(req_id, expect, "responses must arrive in order");
            }
            other => panic!("expected StatusInfo, got {other:?}"),
        }
    }
    simfs_core::wire::write_frame(&mut sock, &simfs_core::wire::Request::Bye.encode()).unwrap();
}

#[test]
fn protocol_error_response_precedes_close() {
    // An analysis client sending a simulator-only request gets the
    // final Error frame *before* the daemon closes the connection —
    // the response must not be lost to the close racing it through the
    // reactor.
    let fx = start_daemon("err-close", 1000, 4);
    let mut sock = std::net::TcpStream::connect(fx.server.addr()).unwrap();
    sock.set_nodelay(true).unwrap();
    simfs_core::wire::write_frame(
        &mut sock,
        &simfs_core::wire::Request::Hello {
            kind: simfs_core::wire::ClientKind::Analysis,
            context: "test-ctx".into(),
            membership: None,
            epoch: None,
        }
        .encode(),
    )
    .unwrap();
    let _ = simfs_core::wire::read_frame(&mut sock).unwrap().unwrap(); // HelloOk
    simfs_core::wire::write_frame(&mut sock, &simfs_core::wire::Request::SimStarted.encode())
        .unwrap();
    sock.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let frame = simfs_core::wire::read_frame(&mut sock)
        .expect("error frame must arrive before close")
        .expect("EOF before the error frame");
    match simfs_core::wire::Response::decode(&frame).unwrap() {
        simfs_core::wire::Response::Error { message } => {
            assert!(message.contains("unexpected analysis request"), "{message}");
        }
        other => panic!("expected Error, got {other:?}"),
    }
    // And then the daemon closes.
    assert!(simfs_core::wire::read_frame(&mut sock).unwrap().is_none());
}

#[test]
fn half_close_still_receives_pending_responses() {
    // A client may pipeline requests, shut down its write half, and
    // read responses until EOF (the threaded front-end always
    // supported this). The reactor must flush the responses it owes
    // before dropping the connection on the read-side EOF.
    let fx = start_daemon("half-close", 1000, 4);
    let mut sock = std::net::TcpStream::connect(fx.server.addr()).unwrap();
    sock.set_nodelay(true).unwrap();
    simfs_core::wire::write_frame(
        &mut sock,
        &simfs_core::wire::Request::Hello {
            kind: simfs_core::wire::ClientKind::Analysis,
            context: "test-ctx".into(),
            membership: None,
            epoch: None,
        }
        .encode(),
    )
    .unwrap();
    let _ = simfs_core::wire::read_frame(&mut sock).unwrap().unwrap(); // HelloOk
    for req_id in 0..3u64 {
        simfs_core::wire::write_frame(
            &mut sock,
            &simfs_core::wire::Request::Status { req_id }.encode(),
        )
        .unwrap();
    }
    sock.shutdown(std::net::Shutdown::Write).unwrap();
    sock.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    for expect in 0..3u64 {
        let frame = simfs_core::wire::read_frame(&mut sock)
            .unwrap_or_else(|e| panic!("response {expect} lost to the half-close: {e}"))
            .unwrap_or_else(|| panic!("EOF before response {expect}"));
        match simfs_core::wire::Response::decode(&frame).unwrap() {
            simfs_core::wire::Response::StatusInfo { req_id, .. } => assert_eq!(req_id, expect),
            other => panic!("expected StatusInfo, got {other:?}"),
        }
    }
    assert!(simfs_core::wire::read_frame(&mut sock).unwrap().is_none());
}

#[test]
fn prefetching_context_serves_hits_on_fast_path() {
    // The ceiling the access-stream digest removes: a prefetching
    // context keeps the lock-free hit layer *and* multi-shard DV
    // routing — observation rides the digest instead of the acquire
    // path.
    let fx = start_daemon_cfg("prefetchfast", 1000, 8, 2, true);
    let mut client = SimfsClient::connect(fx.server.addr(), "test-ctx").unwrap();
    let status = client.acquire(&[6]).unwrap();
    assert!(status.ok(), "{status:?}");
    client.release(6).unwrap();
    let status = client.acquire(&[6]).unwrap();
    assert!(status.ok(), "{status:?}");
    client.release(6).unwrap();
    let stats = fx.server.stats();
    assert_eq!(
        stats.acquired_fast, 1,
        "prefetching context must serve its hit off the fast path: {stats:?}"
    );
    assert!(stats.misses >= 1);
    client.finalize().unwrap();
}

#[test]
fn tick_drain_feeds_agents_from_pure_hit_stream() {
    // The headline of the digest design: a client whose steady-state
    // traffic is 100% lock-free fast-path hits still drives the §IV-B
    // agents — the reactor tick drains its recorded access stream into
    // every shard, the trajectory confirms, and the agents prefetch
    // beyond the warm zone without the client ever taking a DV lock.
    let fx = start_daemon_cfg("tickdrain", 1000, 8, 2, true);
    let mut client = SimfsClient::connect(fx.server.addr(), "test-ctx").unwrap();
    const WARM: u64 = 12;
    for key in 1..=WARM {
        let status = client.acquire(&[key]).unwrap();
        assert!(status.ok(), "{status:?}");
        client.release(key).unwrap();
    }
    // Second pass over the warm zone: pure fast-path hits; the only
    // path from these accesses to the agents is the tick drain.
    for key in 1..=WARM {
        let status = client.acquire(&[key]).unwrap();
        assert!(status.ok(), "{status:?}");
        client.release(key).unwrap();
    }
    client.flush().unwrap();
    let scanned = fx.server.stats();
    assert!(
        scanned.acquired_fast >= WARM,
        "the warm re-scan must ride the fast path: {scanned:?}"
    );
    // Both passes were recorded (2 × WARM records) and must all replay
    // into the agents; the confirmed stride-1 trajectory must have
    // planned at least one prefetch launch past the warm frontier.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let stats = fx.server.stats();
        if stats.digest_replayed >= 2 * WARM && stats.prefetch_launches >= 1 {
            assert_eq!(stats.digest_dropped, 0, "nothing may drop at this depth");
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "tick drain never fed the agents: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    client.finalize().unwrap();
}

/// [`start_daemon_cfg`] with supervision knobs tightened for test
/// timescales and a fault-injecting launcher. Prefetching is off so the
/// fault counters are exactly the demand path's.
fn start_supervised_daemon(
    tag: &str,
    faults: simfs_core::server::SimFaultSpec,
    supervisor: simfs_core::model::SupervisorCfg,
) -> Fixture {
    let dir = std::env::temp_dir().join(format!(
        "simfs-daemon-{}-{}-{:?}",
        tag,
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let storage = StorageArea::create(&dir, u64::MAX).unwrap();
    let driver = Arc::new(
        PatternDriver::new("out-", ".sdf", 6)
            .with_parallelism(ParallelismMap::unconstrained(1, 2)),
    );
    let size = step_bytes(1).len() as u64;
    let steps = StepMath::new(1, 4, 64);
    let ctx = ContextCfg::new("test-ctx", steps, size, 1000 * size)
        .with_policy("dcl")
        .with_smax(4)
        .with_prefetch(false)
        .with_supervisor(supervisor);
    let checksums: HashMap<u64, u64> = (1..=8)
        .map(|k| (k, simstore::fnv1a64(&step_bytes(k))))
        .collect();
    let launcher = Arc::new(
        ThreadSimLauncher::new(
            step_bytes,
            |key| PatternDriver::new("out-", ".sdf", 6).filename_of(key),
            Duration::from_millis(2),
            Duration::from_millis(1),
        )
        .with_faults(faults),
    );
    let server = DvServer::start(
        ServerConfig {
            ctx,
            driver: driver.clone(),
            storage: storage.clone(),
            launcher,
            checksums,
            dv_shards: 1,
            cluster: ClusterMember::SOLO,
            durability: DurabilityCfg::default(),
        },
        "127.0.0.1:0",
    )
    .unwrap();
    Fixture {
        server,
        storage,
        driver,
        _dir: dir,
    }
}

/// Supervision knobs scaled to test timescales: fast backoff, short
/// quarantine, watchdog far away (sims here run in milliseconds).
fn test_supervisor() -> simfs_core::model::SupervisorCfg {
    simfs_core::model::SupervisorCfg {
        backoff_base: simkit::Dur::from_millis(2),
        backoff_cap: simkit::Dur::from_millis(10),
        quarantine: simkit::Dur::from_secs(2),
        ..Default::default()
    }
}

#[test]
fn transient_sim_crash_is_retried_transparently() {
    // One injected crash: the first launched sim dies after SimStarted.
    // The supervision tier re-enqueues the production after backoff and
    // the acquire completes as if nothing happened.
    let faults = simfs_core::server::SimFaultSpec {
        crash_quota: 1,
        corrupt_every: 0,
        ..Default::default()
    };
    let fx = start_supervised_daemon("retry", faults, test_supervisor());
    let mut client = SimfsClient::connect(fx.server.addr(), "test-ctx").unwrap();
    let status = client.acquire(&[2]).unwrap();
    assert!(status.ok(), "{status:?}");
    assert_eq!(status.ready, vec![2]);
    let stats = fx.server.stats();
    assert_eq!(stats.sim_retries, 1, "{stats:?}");
    assert_eq!(stats.failures, 1, "{stats:?}");
    assert_eq!(stats.intervals_poisoned, 0, "{stats:?}");
    client.finalize().unwrap();
}

#[test]
fn corrupt_output_is_deleted_killed_and_reproduced() {
    // Key 7's first production is published as a truncated SDF
    // container. The integrity gate must delete it, kill the producer,
    // and the retry must re-produce the whole interval cleanly.
    let faults = simfs_core::server::SimFaultSpec {
        crash_quota: 0,
        corrupt_every: 7,
        ..Default::default()
    };
    let fx = start_supervised_daemon("corrupt", faults, test_supervisor());
    let mut client = SimfsClient::connect(fx.server.addr(), "test-ctx").unwrap();
    let status = client.acquire(&[7]).unwrap();
    assert!(status.ok(), "{status:?}");
    assert_eq!(status.ready, vec![7]);
    let stats = fx.server.stats();
    assert_eq!(stats.corrupt_outputs, 1, "{stats:?}");
    assert_eq!(stats.sim_retries, 1, "{stats:?}");
    assert_eq!(stats.intervals_poisoned, 0, "{stats:?}");
    // What ended up resident must be a structurally valid container
    // matching the recorded checksum — the corrupt attempt left no
    // trace.
    let bytes = fx.storage.read(&fx.driver.filename_of(7)).unwrap();
    simstore::Dataset::decode(&bytes).expect("resident file must verify");
    assert_eq!(simstore::fnv1a64(&bytes), simstore::fnv1a64(&step_bytes(7)));
    client.finalize().unwrap();
}

#[test]
fn persistent_crash_exhausts_budget_and_poisons_with_typed_code() {
    // Every sim crashes once (unbounded quota; each retry is a fresh
    // sim id, so every attempt dies). The interval must poison after
    // the attempt budget and the waiter must receive a typed Poisoned
    // failure; later acquires of the interval short-circuit without
    // launching.
    let faults = simfs_core::server::SimFaultSpec {
        crash_quota: u64::MAX,
        corrupt_every: 0,
        ..Default::default()
    };
    let fx = start_supervised_daemon("poison", faults, test_supervisor());
    let mut client = SimfsClient::connect(fx.server.addr(), "test-ctx").unwrap();
    let status = client.acquire(&[2]).unwrap();
    assert!(!status.ok(), "{status:?}");
    assert_eq!(status.failed.len(), 1);
    assert_eq!(status.failed[0].0, 2);
    assert_eq!(
        status.failed[0].1.code,
        simfs_core::dv::FailCode::Poisoned,
        "{status:?}"
    );
    assert!(
        status.failed[0].1.reason.contains("poisoned"),
        "{status:?}"
    );
    let stats = fx.server.stats();
    assert_eq!(stats.failures, 3, "one per attempt: {stats:?}");
    assert_eq!(stats.sim_retries, 2, "{stats:?}");
    assert_eq!(stats.intervals_poisoned, 1, "{stats:?}");
    // A different key of the same interval: immediate typed failure,
    // no new production attempt.
    let status = client.acquire(&[3]).unwrap();
    assert!(!status.ok(), "{status:?}");
    assert_eq!(
        status.failed[0].1.code,
        simfs_core::dv::FailCode::Poisoned,
        "{status:?}"
    );
    let stats = fx.server.stats();
    assert_eq!(stats.failures, 3, "quarantine must not relaunch: {stats:?}");
    client.finalize().unwrap();
}

#[test]
fn lock_rank_tracker_is_engaged_and_clean_across_supervision() {
    // Drives the supervision machinery — crash retries with backoff,
    // the reaper's `next_due` scans, integrity-gate kill/re-produce —
    // with the debug lock-rank tracker live on every daemon thread.
    // Any out-of-order acquisition or blocking call under a no-block
    // lock panics inside the daemon (and fails the acquire), so the
    // green path is the assertion; the final check pins that the
    // tracker actually ran, so a regression that stopped annotating
    // lock sites could not pass silently.
    let baseline = simkit::lockrank::checks();
    let faults = simfs_core::server::SimFaultSpec {
        crash_quota: 2,
        corrupt_every: 3,
        ..Default::default()
    };
    let fx = start_supervised_daemon("lockrank", faults, test_supervisor());
    let mut client = SimfsClient::connect(fx.server.addr(), "test-ctx").unwrap();
    let status = client.acquire(&[1, 2, 3, 4]).unwrap();
    assert!(status.ok(), "{status:?}");
    let stats = fx.server.stats();
    assert!(
        stats.sim_retries >= 1,
        "faults must have exercised the retry path: {stats:?}"
    );
    client.finalize().unwrap();
    drop(fx);
    if cfg!(debug_assertions) {
        assert!(
            simkit::lockrank::checks() > baseline,
            "debug builds must be running the rank tracker"
        );
    } else {
        assert_eq!(simkit::lockrank::checks(), 0, "release tracker is compiled out");
    }
}
