//! # simcost — cost models for simulation-data availability (§V)
//!
//! Three ways to keep simulation data analyzable over an availability
//! period `Δt`:
//!
//! * **on-disk** — run the simulation once, store every output step for
//!   `Δt`: `C = C_sim(n_o, P) + C_store(n_o, s_o, Δt)`;
//! * **in-situ** — store nothing; every analysis `j` re-runs the
//!   simulation from step 0 to the last step it reads:
//!   `C = Σ_j C_sim(i_j + |γ(j)|, P)`;
//! * **SimFS** — store restart files plus a bounded cache, re-simulate
//!   misses: `C = C_sim(n_o, P) + C_store(n_r, s_r, Δt) +
//!   C_store(M, s_o, Δt) + C_sim(V(γ), P)`.
//!
//! The number of re-simulated steps `V(γ)` depends on the cache policy
//! and the interleaved access sequence; it is measured by replaying the
//! workload through the Data Virtualizer (`simfs-core::replay`) and fed
//! into [`model::cost_simfs`] — this crate owns the *pricing*, not the
//! caching behaviour.
//!
//! Calibration constants ([`calib`]) come straight from the paper:
//! Microsoft Azure NCv2 compute at 2.07 $/node/hour, Azure Files storage
//! at 0.06 $/GiB/month, and the COSMO production configuration
//! (P = 100 nodes, `tau_sim` = 20 s, `Δd` = 15 × 20 s timesteps,
//! s_o = 6 GiB, s_r = 36 GiB, ≈50 TiB total output).

pub mod calib;
pub mod heatmap;
pub mod model;

pub use calib::{Rates, Scenario, AZURE, PIZ_DAINT};
pub use heatmap::{cost_ratio_heatmap, HeatmapPoint};
pub use model::{cost_in_situ, cost_on_disk, cost_simfs, resim_compute_hours, CostBreakdown};
