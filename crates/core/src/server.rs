//! The DV daemon: TCP front-end of the Data Virtualizer (Fig. 4).
//!
//! One daemon serves one or more *simulation contexts* (§II: "for a
//! given simulation, scientists identify multiple simulation contexts
//! that are made available to the analyses through SimFS"); clients
//! select a context by name in their hello handshake — the protocol
//! twin of the paper's `SIMFS_Init(sim_context, ...)` / environment
//! variable. Analysis clients connect through DVLib
//! ([`crate::client`]); re-simulations are spawned through a
//! [`JobLauncher`] and connect back as simulator clients to report
//! `SimStarted` / `FileProduced` / `SimFinished`.
//!
//! # Concurrency model and lock hierarchy
//!
//! The machine-readable form of this hierarchy — acquisition levels,
//! blocking rules, and the source patterns that mark each acquisition
//! site — lives in `crates/core/LOCKS.md`. That registry is enforced
//! two ways: statically by `cargo run -p simlint` (lock order and the
//! blocking denylist, on the source text) and dynamically by
//! [`simkit::lockrank`] (a debug-build thread-local held-rank stack
//! asserted on every annotated acquisition). The prose below explains
//! *why* the tiers exist; when in doubt about what is allowed where,
//! the registry wins.
//!
//! Above everything sits the **cluster tier**, which involves no locks
//! at all: a deployment may run K daemon *processes* per context
//! ([`ServerConfig::cluster`]), each owning the restart intervals with
//! `interval % K == index`, a `1/K` slice of the cache budget and
//! `s_max`, and its own residue class of the cluster-wide sim-id
//! stride. Daemons never talk to each other — DVLib's
//! [`crate::client::DvCluster`] hashes each key's interval to its
//! owning daemon (the same rule [`crate::dv::DvRouter`] applies to the
//! intra-process shards below) and fans client teardown out to every
//! member, so the cluster is, by construction, the `ShardedDv`
//! composition the sharding equivalence tests pin — split across
//! processes instead of locks. A member rejects acquires for intervals
//! it does not own rather than serving them under the wrong budget.
//!
//! Within one daemon, connections are served by the sharded epoll
//! reactor ([`crate::reactor`]): min(cores, 8) event-loop threads, each
//! owning an epoll instance and a disjoint subset of connections.
//! Requests dispatch on the owning reactor thread; responses to *other*
//! clients route through the reactor's registry to their owning shard.
//! Daemon thread count is fixed (reactor shards + effect helpers +
//! accept + reaper) regardless of client count.
//!
//! Alongside the reactor runs the **effect-execution tier**
//! ([`crate::effectpool`]): a pool of helper threads (one per reactor
//! shard by default, [`DaemonTuning::effect_helpers`]) fed by bounded
//! per-shard queues. With the pool active, reactor shard threads are
//! *non-blocking by contract* — they register with
//! [`simkit::lockrank::mark_thread_nonblocking`] and every blocking
//! effect site asserts it is not on one. A transition still collects
//! its `Effects` under the shard lock exactly as before, but `commit`
//! now routes any outbox that needs blocking work — sim launch/kill,
//! WAL append + fsync, eviction deletes, storage reads — to the
//! helpers; pure socket-frame outboxes (the hit hot path) are flushed
//! inline because frame sends are wait-free into per-connection
//! buffers. Helpers drain a queue in FIFO order and in batches, which
//! both preserves the sim wire-event order a simulator connection
//! produced (`FileProduced` before `SimFinished`) and opens the WAL
//! **group-fsync** window: one `fsync` covers every pin record in the
//! batch ([`DvStats::wal_syncs`] vs [`DvStats::wal_appends`] is the
//! evidence). A full queue parks the *submitting* shard thread on the
//! queue condvar — backpressure, counted in
//! [`DvStats::helper_queue_full`], bounds memory instead of dropping
//! effects. Setting `effect_helpers = Some(0)` restores the old inline
//! behaviour (compatibility mode; the equivalence tests pin that both
//! modes produce identical client-visible outcomes).
//!
//! Beneath the reactor, each context's control plane is layered so that
//! the §IV hot path — an acquire of an already-virtualized step — gets
//! cheaper as it gets more common. From least to most exclusive:
//!
//! 1. **Concurrent hit index (no DV lock).** Every context keeps a
//!    [`simcache::HitIndex`]: a sharded, read-mostly replica of cache
//!    membership with atomic fast-pin counts. A hit acquire pins the
//!    key under one index-shard *read* lock, counts itself atomically,
//!    and replies — it never touches a DV lock. Eviction (under the DV
//!    shard lock) must win `try_retire` against the index, whose write
//!    lock excludes in-flight pinners; a fast path that loses the race
//!    observes the bumped shard generation and falls back to the slow
//!    path. Fast releases likewise drop their pin with index atomics
//!    only; each connection tracks its fast pins locally
//!    (reactor-thread-owned state, no locks) and drains them on
//!    disconnect.
//!
//! 1a. **Access digest (no locks on record, shard locks on drain).**
//!    Prefetching contexts need their agents to observe the *full*
//!    access stream — which hits serving through layer 1 (and, under
//!    clustering, requests routed to other daemons) would otherwise
//!    bypass. Observation is therefore decoupled from acquisition:
//!    each connection appends `(client, key, epoch)` records to a
//!    bounded lossy [`crate::prefetch::AccessLog`] owned by its reactor
//!    thread (a plain array write — overflow drops the oldest record
//!    and counts it), and the log drains into the agents under the DV
//!    shard locks later: piggybacked on the connection's next slow-path
//!    transition (which takes locks anyway), on a periodic reactor tick
//!    when the stream is pure hits, or when a clustered client's
//!    forwarded `AccessDigest` frame arrives. Replay feeds every shard
//!    (each agent replica sees the whole sequence) while planning is
//!    partitioned by interval ownership, so the shards' prefetch
//!    launches compose without overlap. The digest tier takes no lock
//!    of its own and is the reason prefetching contexts keep both
//!    layer 1 and N-way DV sharding.
//! 1b. **Durability tier (WAL; durable deployments only).** A context
//!    started with [`DurabilityCfg::wal`] keeps one append-only
//!    [`simstore::walog::WriteAheadLog`] in its storage area, guarded
//!    by its own mutex *below* every DV shard lock in the order (shard
//!    → WAL, never WAL → shard; the WAL lock is never held across
//!    socket or launcher I/O either). Pin records ride the `Effects`
//!    outbox: slow-path pins are derived from the `Ready` responses a
//!    transition collected and appended + fsynced in `commit` *before*
//!    the frames are sent (write-ahead ordering, preserved batch-wide
//!    by the effect tier: every pin in a helper batch is fsynced before
//!    any of the batch's frames go out), while fast-path hit pins —
//!    which never enter the outbox — buffer in the connection-local
//!    window, are netted ([`simstore::walog::net_pin_window`]) when the
//!    frame handler returns, i.e. after the reply, and ride
//!    `Effects::wal_records` into the same commit pass. A crash can
//!    therefore lose a fast pin's record but never a slow one's; the
//!    client
//!    re-assertion protocol reconciles either way (an unlogged pin
//!    re-acquires, a logged-but-released pin is freed by the
//!    reassert's closing `ClientGone`). The log compacts to a
//!    [`simstore::walog::WalState`] snapshot at sync points once it
//!    passes [`simstore::walog::COMPACT_THRESHOLD`]. Contexts without
//!    durability skip this tier entirely — one `Option` check on the
//!    hot path.
//! 2. **Per-key-range DV shard locks.** The DV state machine is split
//!    into N independent shards routed by restart interval
//!    ([`crate::dv::DvRouter`]): each shard owns a disjoint set of
//!    intervals, a 1/N slice of the cache budget and `s_max`, its own
//!    waiter/launch/prefetch state, and one `Mutex<DvCore>`. Misses on
//!    disjoint key ranges proceed in parallel; client disconnects fan
//!    out across shards (locked one at a time — no shard lock is ever
//!    held while taking another). This is the intra-process rehearsal
//!    for multi-daemon key-range sharding. Lock wait/hold times are
//!    counted per context and surfaced through [`DvStats`].
//! 3. **Writer routing.** Responses route through the reactor registry
//!    (sharded map + per-shard inboxes), never under a DV lock.
//!    Responses to the dispatching connection itself bypass the
//!    registry into the connection's own output buffer.
//! 4. **Launch ledger.** Because launches/kills happen outside the DV
//!    locks, a prefetch kill could race a not-yet-effected launch of
//!    the same sim. A small per-context ledger serializes *only*
//!    job-control bookkeeping (launch intents are registered under the
//!    owning DV shard lock; the ledger lock itself is never held
//!    across launcher I/O) and cancels launches whose kill won the
//!    race. Lock order is strictly shard → ledger.
//!
//! The transition discipline extends the split-lock design one step:
//! **collect under lock, effect after release — and blocking effects
//! off the shard thread entirely.** A transition locks one DV shard,
//! runs [`DataVirtualizer::handle_into`] into a reusable scratch
//! buffer, resolves actions into an `Effects` value and unlocks;
//! response encoding and socket writes happen outside every DV lock on
//! the shard thread, while job spawning, file deletion and WAL fsyncs
//! are submitted to the effect tier (or run inline in compatibility
//! mode). All responses of one transition for one destination coalesce
//! into a single [`wire::FrameBatch`] write. Deferred eviction deletes
//! re-check the cache under the owning shard lock so an overlapping
//! re-production cannot lose its file to a stale eviction — the
//! re-check happens on the helper thread, under the same shard lock,
//! so the guarantee is unchanged.
//!
//! Three observable consequences of the lock-minimized design:
//! responses to *different* requests of one client may interleave
//! differently than under a coarse lock — including a `Status` reply
//! overtaking a pooled slow-path `Ready` still queued in the effect
//! tier (per-request semantics are unchanged — DVLib treats `Queued`
//! as informational); replacement-policy recency for fast-path hits is
//! approximate — a fast hit sets a CLOCK-style reference bit instead
//! of reordering the policy's lists, so a hot key survives an eviction
//! decision rather than never being considered; and the fast-pin WAL
//! window (1b above) is widened by effect-queue latency — a crash can
//! lose the records of fast pins still queued for their group fsync,
//! which the existing client re-assertion protocol already reconciles.
//!
//! This remains the classic coordination-daemon shape — the data path
//! (bulk file I/O) never goes through the daemon, only control messages
//! do, exactly as the paper separates control (TCP) from data (parallel
//! file system).

use crate::driver::SimDriver;
use crate::dv::{
    ClientId, DataVirtualizer, DvAction, DvEvent, DvRouter, DvStats, EventRoute, FailCode,
    ShardedDv, SimId,
};
use crate::model::{ContextCfg, StepMath};
use crate::prefetch::{AccessLog, AccessRecord, ACCESS_LOG_CAPACITY};
use crate::reactor::{ConnCtx, Reactor};
use crate::sys::{Epoll, EpollEvent, EventFd, EPOLLIN};
use crate::wire::{self, ClientKind, FrameBatch, Request, Response};
use parking_lot::Mutex;
use simbatch::{JobId, JobLauncher, SpawnSpec};
use simcache::{u64_map, HitIndex, U64Map, U64Set};
use simkit::lockrank;
use simkit::SimTime;
use simstore::walog::{self, WalRecord, WalState, WriteAheadLog};
use simstore::StorageArea;
use std::collections::{HashMap, HashSet};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::ops::RangeInclusive;
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::{Duration, Instant};

pub use crate::dv::ClusterMember;

/// Environment variables passed to launched simulator jobs.
pub mod env_keys {
    /// Daemon address (`host:port`).
    pub const DV_ADDR: &str = "SIMFS_DV_ADDR";
    /// DV-assigned simulation id.
    pub const SIM_ID: &str = "SIMFS_SIM_ID";
    /// Context name.
    pub const CONTEXT: &str = "SIMFS_CONTEXT";
    /// Storage-area directory the simulator writes into.
    pub const DATA_DIR: &str = "SIMFS_DATA_DIR";
}

/// Crash-safety configuration of one context (tier 1b of the lock
/// hierarchy). Off by default: the WAL costs an fsync per durable
/// transition, which non-durable deployments (benchmarks, ephemeral
/// experiments) should not pay.
#[derive(Clone, Copy, Debug)]
pub struct DurabilityCfg {
    /// Keep a write-ahead pin/lease log in the storage area.
    pub wal: bool,
    /// On startup, replay the WAL and restore the pins of the previous
    /// instance under a new recovery epoch (the `--recover` flag).
    /// Restored pins are held on behalf of their original clients until
    /// those clients reconnect and re-assert them, or until
    /// `lease_timeout` expires them.
    pub recover: bool,
    /// How long recovered pins wait for their client's re-assertion
    /// before a synthetic `ClientGone` releases them — the backstop
    /// that keeps a crash from leaking residency vetoes forever.
    pub lease_timeout: Duration,
}

impl Default for DurabilityCfg {
    fn default() -> DurabilityCfg {
        DurabilityCfg {
            wal: false,
            recover: false,
            lease_timeout: Duration::from_secs(30),
        }
    }
}

impl DurabilityCfg {
    /// WAL on, recovery as given, default lease timeout.
    pub fn durable(recover: bool) -> DurabilityCfg {
        DurabilityCfg {
            wal: true,
            recover,
            ..DurabilityCfg::default()
        }
    }
}

/// Daemon configuration for one simulation context.
pub struct ServerConfig {
    /// The context (cadences, cache, policy, `s_max`, prefetching).
    pub ctx: ContextCfg,
    /// Simulator driver (naming, job creation, checksums).
    pub driver: Arc<dyn SimDriver>,
    /// Storage area backing the context.
    pub storage: StorageArea,
    /// Job launcher for re-simulations.
    pub launcher: Arc<dyn JobLauncher>,
    /// Recorded checksums of the initial simulation (`SIMFS_Bitrep`
    /// reference data): key → checksum.
    pub checksums: HashMap<u64, u64>,
    /// Number of independent DV shards the context's control plane is
    /// split into (key-range sharding by restart interval). `0` picks
    /// `min(cores, 4, s_max)`. Prefetching contexts shard like any
    /// other: the access-stream digest replays the full sequence into
    /// every shard's agents, so sharding no longer degrades
    /// direction/cadence detection. Values above 1 partition the cache
    /// budget and `s_max` evenly across shards — eviction pressure
    /// becomes per-key-range rather than global, and because every
    /// shard keeps at least one launch slot, explicitly requesting more
    /// shards than `s_max` raises the effective concurrent-sim cap to
    /// the shard count.
    pub dv_shards: u32,
    /// This daemon's position in a multi-daemon cluster
    /// ([`ClusterMember::SOLO`] for standalone deployments). Member `k`
    /// of `K` owns the restart intervals with `interval % K == k`,
    /// takes the `1/K` slice of the cache budget and `s_max` (exactly
    /// the [`crate::dv::shard_cfg`] split the intra-process shards
    /// use), and strides its sim-id space over the whole cluster.
    /// Acquires for intervals owned by another member are rejected
    /// (`Failed`) — DVLib's [`crate::client::DvCluster`] routes them to
    /// the right daemon in the first place.
    pub cluster: ClusterMember,
    /// Crash safety: write-ahead pin/lease logging and restart
    /// recovery. [`DurabilityCfg::default`] turns both off.
    pub durability: DurabilityCfg,
}

/// Thread-topology knobs of one daemon process (every context in the
/// daemon shares the reactor and the effect tier). The defaults are
/// what [`DvServer::start`] uses; [`DvServer::start_tuned`] takes an
/// explicit value — tests pin shard counts with it, benchmarks sweep
/// helper counts, and `effect_helpers: Some(0)` is the inline
/// compatibility mode the equivalence tests run against.
#[derive(Clone, Copy, Debug)]
pub struct DaemonTuning {
    /// Reactor event-loop threads; `0` picks `min(cores, 8)` (the
    /// reactor clamps to `1..=`[`crate::reactor::MAX_SHARDS`]).
    pub reactor_shards: usize,
    /// Effect-tier helper threads. `None` matches the reactor shard
    /// count (one helper per submission queue); `Some(0)` disables the
    /// tier entirely — effects run inline on shard threads as they did
    /// before the tier existed, and the non-blocking thread contract is
    /// not enforced.
    pub effect_helpers: Option<usize>,
    /// Per-shard effect queue capacity; a submitting shard thread parks
    /// once its queue holds this many unexecuted effects
    /// (backpressure — effects are never dropped).
    pub effect_queue_cap: usize,
}

impl Default for DaemonTuning {
    fn default() -> DaemonTuning {
        DaemonTuning {
            reactor_shards: 0,
            effect_helpers: None,
            effect_queue_cap: 256,
        }
    }
}

/// Hit-index lock shards (per context). Sixteen spreads neighbouring
/// step keys over distinct read-write locks at negligible cost.
const HIT_INDEX_SHARDS: usize = 16;

/// Adaptive digest drain: once a connection's access ring is this full
/// (¾ of [`ACCESS_LOG_CAPACITY`]), the next acquire drains it even on a
/// pure-hit stream — a saturated single client would otherwise overflow
/// the ring between 20 ms reactor ticks and drop its freshest records.
const DIGEST_HIGH_WATER: usize = ACCESS_LOG_CAPACITY - ACCESS_LOG_CAPACITY / 4;

/// The state guarded by one DV shard lock: the shard's state machine,
/// the request bookkeeping its notifications resolve through, and the
/// reusable action scratch buffer.
struct DvCore {
    dv: DataVirtualizer,
    /// (client, key) → request ids awaiting Ready/Failed (keys of this
    /// shard only — requests route by key).
    pending: HashMap<(ClientId, u64), Vec<u64>>,
    /// Scratch for [`DataVirtualizer::handle_into`]; reused across
    /// transitions so the hot path allocates nothing.
    actions: Vec<DvAction>,
}

/// Job-control ledger: serializes launch/kill effects (only those) and
/// cancels launches whose kill won the race to the launcher.
#[derive(Default)]
struct LaunchLedger {
    /// Sims whose `Launch` action has been collected (registered under
    /// the owning DV shard lock) but not yet picked up by an effector
    /// thread. Lets a racing kill tell "launch still in flight" (cancel
    /// it) from "sim already completed" (drop it), so `cancelled` stays
    /// bounded.
    pending_launch: U64Set,
    /// Sims currently inside a `launcher.launch()` call (the ledger
    /// lock is dropped for the I/O; this set covers the gap).
    launching: U64Set,
    /// Sims handed to the launcher and not yet known-complete.
    launched: U64Set,
    /// Sims killed before their launch was effected.
    cancelled: U64Set,
}

impl LaunchLedger {
    /// Any job somewhere between "launch collected" and "known
    /// complete" — the condition under which the reaper must poll.
    fn jobs_in_flight(&self) -> bool {
        !(self.pending_launch.is_empty() && self.launching.is_empty() && self.launched.is_empty())
    }
}

/// Everything a DV transition wants done once its shard lock is
/// released. Owned by each connection/reaper context and reused, so a
/// transition allocates nothing in steady state.
#[derive(Default)]
struct Effects {
    /// Responses to send, in emission order.
    outbox: Vec<(ClientId, Response)>,
    /// Sims to launch.
    launches: Vec<(SimId, RangeInclusive<u64>, u32)>,
    /// Sims to kill.
    kills: Vec<SimId>,
    /// Output steps to delete from the storage area.
    evicts: Vec<u64>,
    /// Sims known complete (finished/failed): drop their ledger entry.
    completed: Vec<SimId>,
    /// Reusable per-destination write batches.
    batches: Vec<(ClientId, FrameBatch)>,
    /// Durable contexts only: explicit WAL records this transition must
    /// append (fast-pin windows, reassert restorations, client
    /// departures) — appended and fsynced by the same group-fsync pass
    /// that logs the outbox's `Ready` pins, before any frame is sent.
    wal_records: Vec<WalRecord>,
}

impl Effects {
    fn has_job_control(&self) -> bool {
        !self.launches.is_empty() || !self.kills.is_empty() || !self.completed.is_empty()
    }
}

/// The write-ahead log plus its in-memory mirror (the state a replay
/// of the file would produce), guarded by one mutex per context. The
/// mirror is what compaction snapshots — no re-reading the file.
struct DaemonWal {
    log: WriteAheadLog,
    state: WalState,
}

impl DaemonWal {
    /// Applies to the mirror and buffers for the file (no syscalls).
    fn append(&mut self, r: WalRecord) {
        self.state.apply(&r);
        self.log.append(&r);
    }

    /// Batched durability point: fsync what is buffered, then compact
    /// once the file outgrows the threshold (the snapshot is bounded by
    /// live pins + leases, so a steady daemon's log stays small).
    fn sync_and_compact(&mut self, epoch: u64) {
        let _ = self.log.sync();
        if self.log.file_bytes() > walog::COMPACT_THRESHOLD {
            let snap = self.state.snapshot(epoch);
            let _ = self.log.compact(&snap);
        }
    }
}

/// Per-connection analysis-session state, owned by the connection's
/// reactor thread (single-threaded access — no locks):
struct ConnLocal {
    /// key → pins this connection took on the fast path and has not
    /// released. Drained via index atomics on release/disconnect; the
    /// DV's per-client pin bookkeeping never sees them.
    fast_pins: U64Map<u32>,
    /// Reusable encode buffer for fast-path replies written straight
    /// into the connection's output.
    scratch: FrameBatch,
    /// This connection's slice of the access-stream digest (prefetching
    /// contexts only): every acquire — fast or slow — is recorded here
    /// and replayed into the agents when the log drains.
    log: AccessLog,
    /// Reused drain buffer (records move here before replay so the log
    /// can keep filling while shard locks are held).
    drain_scratch: Vec<AccessRecord>,
    /// Record the local request stream into `log`. Off for clustered
    /// DVLib sessions: they see only the keys routed here, so they
    /// forward their full pre-routing stream as `AccessDigest` frames
    /// instead — recording both would feed every access twice.
    observe_local: bool,
    /// Durable contexts only: fast-path pin/release records buffered
    /// for the WAL. Netted ([`walog::net_pin_window`]) and appended
    /// when the frame handler returns — a hit-path acquire→release
    /// round trip inside one window writes nothing.
    wal_pending: Vec<WalRecord>,
}

impl ConnLocal {
    fn new() -> ConnLocal {
        ConnLocal {
            fast_pins: u64_map(),
            scratch: FrameBatch::new(),
            log: AccessLog::new(ACCESS_LOG_CAPACITY),
            drain_scratch: Vec::new(),
            observe_local: true,
            wal_pending: Vec::new(),
        }
    }
}

/// DV-lock timing/contention counters (satellite instrumentation of
/// the shard locks; surfaced through [`DvStats`]).
#[derive(Default)]
struct LockPerf {
    wait_ns: AtomicU64,
    hold_ns: AtomicU64,
    transitions: AtomicU64,
    acquired_slow: AtomicU64,
}

/// Effect-tier counters (surfaced through [`DvStats`]): how often shard
/// threads offloaded blocking work, how often they hit queue
/// backpressure, and per-class helper-side execution latency.
#[derive(Default)]
struct EffectPerf {
    offloaded: AtomicU64,
    queue_full: AtomicU64,
    spawn_ns: AtomicU64,
    spawn_ops: AtomicU64,
    wal_ns: AtomicU64,
    wal_ops: AtomicU64,
    evict_ns: AtomicU64,
    evict_ops: AtomicU64,
    read_ns: AtomicU64,
    read_ops: AtomicU64,
}

/// Latency class of one effect job, decided from its dominant blocking
/// operation (a commit carrying both a launch and evictions counts as
/// `Spawn` — job control is the costliest and rarest class).
#[derive(Clone, Copy)]
enum EffectClass {
    Spawn,
    Wal,
    Evict,
    Read,
}

impl EffectPerf {
    fn record(&self, class: EffectClass, elapsed: Duration) {
        let ns = elapsed.as_nanos().min(u64::MAX as u128) as u64;
        let (ns_ctr, ops_ctr) = match class {
            EffectClass::Spawn => (&self.spawn_ns, &self.spawn_ops),
            EffectClass::Wal => (&self.wal_ns, &self.wal_ops),
            EffectClass::Evict => (&self.evict_ns, &self.evict_ops),
            EffectClass::Read => (&self.read_ns, &self.read_ops),
        };
        ns_ctr.fetch_add(ns, Ordering::Relaxed);
        ops_ctr.fetch_add(1, Ordering::Relaxed);
    }
}

/// One unit of blocking work submitted by a reactor shard to the effect
/// tier. Jobs carry their context so one pool serves every context in
/// the daemon; per-shard queue FIFO plus static queue→helper assignment
/// preserve the submission order of any single connection.
enum EffectJob {
    /// A collected `Effects` value whose execution needs blocking
    /// operations (WAL fsync, launcher, eviction deletes). `wal_logged`
    /// is set by the batch executor once the group-fsync pass has
    /// appended the outbox's pin records.
    Commit {
        ctx: Arc<CtxRuntime>,
        fx: Box<Effects>,
        wal_logged: bool,
    },
    /// A simulator protocol event: output verification (storage read)
    /// plus the resulting transition and commit run on the helper.
    SimEvent {
        ctx: Arc<CtxRuntime>,
        sim: SimId,
        event: SimWireEvent,
    },
    /// A `Bitrep` re-read: storage read + checksum compare, reply sent
    /// from the helper through the reactor registry.
    BitrepRead {
        ctx: Arc<CtxRuntime>,
        client: ClientId,
        req_id: u64,
        key: u64,
    },
}

/// Simulator wire events in submittable form (the request decoded on
/// the shard thread, verification deferred to the helper).
enum SimWireEvent {
    Started,
    Produced { key: u64, size: u64 },
    Finished,
    /// Connection lost before `SimFinished` (from `on_close`).
    Failed,
}

/// Per-context runtime: the sharded DV state machine plus its
/// effectors.
struct CtxRuntime {
    name: String,
    /// Back-reference to this runtime's own `Arc` (set at construction
    /// via `Arc::new_cyclic`), so methods running on shard threads can
    /// package `self` into an [`EffectJob`] without threading the `Arc`
    /// through every call site.
    weak_self: std::sync::Weak<CtxRuntime>,
    /// One lock per key-range shard; index `s` owns the restart
    /// intervals with `interval % n == s` (of the intervals this
    /// cluster member owns).
    shards: Vec<Mutex<DvCore>>,
    router: DvRouter,
    /// Position in the daemon cluster; `SOLO` outside clusters.
    cluster: ClusterMember,
    /// The context's step math (for cluster-ownership checks).
    steps: StepMath,
    /// The lock-free hit layer (every context — prefetching ones
    /// observe through the digest instead of the acquire path).
    fast: Arc<HitIndex>,
    /// The context runs prefetch agents, fed by digest drains:
    /// connections record their access streams and the daemon replays
    /// them under the shard locks (layer 1a of the hierarchy).
    digest: bool,
    perf: LockPerf,
    effects: EffectPerf,
    reactor: Arc<Reactor>,
    ledger: Mutex<LaunchLedger>,
    driver: Arc<dyn SimDriver>,
    storage: StorageArea,
    launcher: Arc<dyn JobLauncher>,
    checksums: HashMap<u64, u64>,
    /// Daemon-wide accept-retry counter (shared with [`Inner`]), so
    /// context snapshots surface it through [`DvStats`].
    accept_retries: Arc<AtomicU64>,
    /// Tier 1b: the write-ahead pin/lease log (`None` for non-durable
    /// contexts — the hot path pays one `Option` check). Lock order:
    /// any DV shard lock → WAL lock; never held across I/O other than
    /// the log's own writes.
    wal: Option<Mutex<DaemonWal>>,
    /// This instance's recovery epoch: strictly above every epoch in
    /// the replayed WAL, `0` without durability. Carried in `HelloOk`
    /// so clients can tell a restarted daemon from a dropped
    /// connection.
    epoch: u64,
    /// WAL records replayed at startup (stat; fixed after start).
    wal_replayed: u64,
    /// Recovery leases: prior-instance client → deadline by which it
    /// must reconnect and re-assert, else its restored pins are
    /// released. Entries leave via re-assertion or expiry (reaper).
    leases: Mutex<HashMap<u64, Instant>>,
    /// Sessions that handshook with a prior-epoch claim (reconnects).
    client_reconnects: AtomicU64,
    /// Recovery leases expired without re-assertion.
    leases_expired: AtomicU64,
    /// Foreign restart intervals whose residency this member has
    /// rebuilt from the shared storage area to serve takeover acquires
    /// for a dead member. Lock order: this lock is taken *before* any
    /// shard lock (priming locks shards one at a time beneath it) and
    /// never while one is held.
    takeover_primed: Mutex<HashSet<u64>>,
    /// Takeover acquires accepted (degraded-mode serving).
    takeover_acquires: AtomicU64,
    /// Foreign intervals primed for takeover serving.
    takeover_intervals_primed: AtomicU64,
    /// Takeover pin counts drained by `HandBack`.
    takeover_pins_handed_back: AtomicU64,
}

struct Inner {
    contexts: HashMap<String, Arc<CtxRuntime>>,
    epoch: Instant,
    addr: SocketAddr,
    next_client: AtomicU64,
    shutdown: AtomicBool,
    reactor: Arc<Reactor>,
    /// Signalled at shutdown; registered in the accept loop's epoll
    /// alongside the listener.
    accept_wake: EventFd,
    /// Wakes the reaper when jobs enter flight (and at shutdown); the
    /// guarded bool is the shutdown request.
    reap_signal: (StdMutex<bool>, Condvar),
    /// Notified whenever sims complete or die, so shutdown's quiesce
    /// wait is event-driven instead of a sleep poll.
    quiesce: (StdMutex<()>, Condvar),
    /// Transient accept failures retried with backoff (EMFILE etc.).
    accept_retries: Arc<AtomicU64>,
    /// The effect-execution tier (empty in inline compatibility mode,
    /// `effect_helpers == Some(0)`). Set once during startup — after
    /// `Inner` exists (the executor captures a `Weak<Inner>`) and
    /// before the accept loop admits any connection.
    pool: std::sync::OnceLock<crate::effectpool::EffectPool<EffectJob>>,
}

impl Inner {
    fn now(&self) -> SimTime {
        SimTime::from_nanos(self.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64)
    }

    /// Routes a hello's context name; an empty name with exactly one
    /// context falls through to it (single-context deployments keep the
    /// pre-multi-context ergonomics).
    fn route(&self, name: &str) -> Option<&Arc<CtxRuntime>> {
        if let Some(ctx) = self.contexts.get(name) {
            return Some(ctx);
        }
        if name.is_empty() && self.contexts.len() == 1 {
            return self.contexts.values().next();
        }
        None
    }

    fn notify_reaper(&self) {
        let _rank = lockrank::held(lockrank::REAP_SIGNAL);
        let _guard = self.reap_signal.0.lock().unwrap();
        self.reap_signal.1.notify_all();
    }

    fn notify_quiesce(&self) {
        let _rank = lockrank::held(lockrank::QUIESCE);
        let _guard = self.quiesce.0.lock().unwrap();
        self.quiesce.1.notify_all();
    }
}

impl CtxRuntime {
    /// The cluster member owning `key`'s restart interval (used only in
    /// rejection diagnostics; the ownership test itself goes through
    /// [`ClusterMember::owns_key`]).
    fn router_member_of(&self, key: u64) -> u32 {
        DvRouter::new(self.steps, self.cluster.size).shard_of_key(key) as u32
    }

    /// Resolves the actions of one DV transition into `fx` (called with
    /// the owning shard lock held; does no I/O).
    fn collect(&self, core: &mut DvCore, fx: &mut Effects) {
        let launches_before = fx.launches.len();
        for action in core.actions.drain(..) {
            match action {
                DvAction::NotifyReady { client, key } => {
                    if let Some(reqs) = core.pending.remove(&(client, key)) {
                        for req_id in reqs {
                            fx.outbox.push((client, Response::Ready { req_id, key }));
                        }
                    }
                }
                DvAction::NotifyFailed {
                    client,
                    key,
                    code,
                    reason,
                } => {
                    if let Some(reqs) = core.pending.remove(&(client, key)) {
                        for req_id in reqs {
                            fx.outbox.push((
                                client,
                                Response::Failed {
                                    req_id,
                                    key,
                                    code,
                                    reason: reason.clone(),
                                },
                            ));
                        }
                    }
                }
                DvAction::Launch {
                    sim, keys, level, ..
                } => fx.launches.push((sim, keys, level)),
                DvAction::Kill { sim } => fx.kills.push(sim),
                DvAction::Evict { key } => fx.evicts.push(key),
            }
        }
        if fx.launches.len() > launches_before {
            // Register in-flight launches while the shard lock is still
            // held: any kill of these sims is collected strictly later,
            // so it will find them here (or in `launched`) and never
            // mistake a live launch for a completed sim. Launch events
            // are rare (one per re-simulation), so the extra lock is
            // off the hit path. Lock order: shard → ledger, always.
            let _rank = lockrank::held(lockrank::LEDGER);
            let mut ledger = self.ledger.lock();
            for (sim, _, _) in &fx.launches[launches_before..] {
                ledger.pending_launch.insert(*sim);
            }
        }
    }

    /// Locks shard `s` with wait/hold accounting, runs `work` on its
    /// core, collects the resulting effects, and runs `post` (e.g. the
    /// Queued check, which needs the post-collect pending state) still
    /// under the same lock. The single home of the lock-timing
    /// discipline — every locked transition goes through here.
    fn with_shard(
        &self,
        s: usize,
        fx: &mut Effects,
        work: impl FnOnce(&mut DvCore),
        post: impl FnOnce(&mut DvCore, &mut Effects),
    ) {
        let t0 = Instant::now();
        let rank = lockrank::held(lockrank::DV_SHARD);
        let mut core = self.shards[s].lock();
        let t1 = Instant::now();
        work(&mut core);
        self.collect(&mut core, fx);
        post(&mut core, fx);
        let t2 = Instant::now();
        drop(core);
        drop(rank);
        self.perf
            .wait_ns
            .fetch_add((t1 - t0).as_nanos() as u64, Ordering::Relaxed);
        self.perf
            .hold_ns
            .fetch_add((t2 - t1).as_nanos() as u64, Ordering::Relaxed);
        self.perf.transitions.fetch_add(1, Ordering::Relaxed);
    }

    /// Applies one event to its owning shard (or fans it out), and
    /// collects its effects.
    fn transition(&self, inner: &Inner, event: DvEvent, fx: &mut Effects) {
        let now = inner.now();
        match self.router.route(&event) {
            EventRoute::Shard(s) => self.with_shard(
                s,
                fx,
                |core| {
                    let DvCore { dv, actions, .. } = core;
                    dv.handle_into(now, event, actions);
                },
                |_, _| {},
            ),
            EventRoute::Broadcast => {
                // One shard at a time: no transition ever holds two
                // shard locks, so shard locks cannot deadlock.
                for s in 0..self.shards.len() {
                    let event = event.clone();
                    self.with_shard(
                        s,
                        fx,
                        |core| {
                            let DvCore { dv, actions, .. } = core;
                            dv.handle_into(now, event, actions);
                        },
                        |_, _| {},
                    );
                }
            }
        }
    }

    /// Encodes and delivers the outbox: one [`FrameBatch`] (one write)
    /// per destination client. Departed clients are dropped silently,
    /// matching the old behavior.
    fn flush_outbox(&self, fx: &mut Effects) {
        if fx.outbox.is_empty() {
            return;
        }
        // Group per destination, preserving per-client emission order.
        // Transitions touch a handful of clients, so linear scan beats
        // a map. Batch entries (and their buffers) are retained across
        // flushes — `used` counts the live prefix; entries past it are
        // cleared spares from earlier flushes with stale client ids.
        let mut used = 0;
        for (client, resp) in fx.outbox.drain(..) {
            match fx.batches[..used].iter_mut().find(|(c, _)| *c == client) {
                Some((_, batch)) => batch.push_response(&resp),
                None => {
                    if let Some((c, batch)) = fx.batches.get_mut(used) {
                        *c = client;
                        batch.push_response(&resp);
                    } else {
                        let mut batch = FrameBatch::new();
                        batch.push_response(&resp);
                        fx.batches.push((client, batch));
                    }
                    used += 1;
                }
            }
        }
        for (client, batch) in &mut fx.batches[..used] {
            // Borrowed send: a response to the dispatching connection
            // itself is staged with no allocation; only
            // cross-connection traffic is copied into an inbox.
            self.reactor.send_bytes(*client, batch.as_bytes());
            batch.clear();
        }
    }

    /// Applies job-control effects. Returns sims whose launch failed
    /// (fed back as `SimFailed`). The ledger lock is held only for set
    /// bookkeeping — never across launcher I/O — because `collect`
    /// takes it while holding a DV shard lock; holding it through a
    /// slow job submission would convoy every transition on the
    /// context.
    fn apply_job_control(&self, inner: &Inner, fx: &mut Effects, failed: &mut Vec<SimId>) {
        if !fx.has_job_control() {
            return;
        }
        let mut to_kill: Vec<SimId> = Vec::new();
        let mut to_launch: Vec<(SimId, RangeInclusive<u64>, u32)> = Vec::new();
        {
            let _rank = lockrank::held(lockrank::LEDGER);
            let mut ledger = self.ledger.lock();
            for sim in fx.kills.drain(..) {
                if ledger.launched.remove(&sim) {
                    to_kill.push(sim);
                } else if ledger.pending_launch.contains(&sim)
                    || ledger.launching.contains(&sim)
                {
                    // Kill won the race against a launch another thread
                    // has collected but not yet effected: cancel it.
                    ledger.cancelled.insert(sim);
                }
                // Neither pending, launching nor launched: the sim
                // already finished or failed; nothing to kill and
                // nothing to remember.
            }
            for (sim, keys, level) in fx.launches.drain(..) {
                ledger.pending_launch.remove(&sim);
                if ledger.cancelled.remove(&sim) {
                    continue;
                }
                ledger.launching.insert(sim);
                to_launch.push((sim, keys, level));
            }
            for sim in fx.completed.drain(..) {
                if ledger.launching.contains(&sim) {
                    // Completed before its launching thread finalized
                    // (possible with in-process launchers): route
                    // through `cancelled` so finalization below does
                    // not record a dead sim as launched.
                    ledger.cancelled.insert(sim);
                } else {
                    ledger.launched.remove(&sim);
                    ledger.cancelled.remove(&sim);
                }
            }
        }
        for sim in to_kill {
            lockrank::assert_blocking_ok("launcher-kill");
            let _ = self.launcher.kill(JobId(sim));
        }
        let launched_any = !to_launch.is_empty();
        for (sim, keys, level) in to_launch {
            lockrank::assert_blocking_ok("launcher-launch");
            let spec = self
                .driver
                .make_job(*keys.start(), *keys.end(), level)
                .env(env_keys::DV_ADDR, inner.addr.to_string())
                .env(env_keys::SIM_ID, sim.to_string())
                .env(env_keys::CONTEXT, &self.name)
                .env(
                    env_keys::DATA_DIR,
                    self.storage.root().to_string_lossy().to_string(),
                );
            let launched = self.launcher.launch(JobId(sim), &spec).is_ok();
            let kill_now = {
                let _rank = lockrank::held(lockrank::LEDGER);
                let mut ledger = self.ledger.lock();
                ledger.launching.remove(&sim);
                if !launched {
                    ledger.cancelled.remove(&sim);
                    failed.push(sim);
                    false
                } else if ledger.cancelled.remove(&sim) {
                    // A kill (or an early completion) landed while the
                    // launcher ran: take the job straight back down.
                    true
                } else {
                    ledger.launched.insert(sim);
                    false
                }
            };
            if kill_now {
                let _ = self.launcher.kill(JobId(sim));
            }
        }
        if launched_any {
            // Jobs are now in flight: the reaper must start polling for
            // orphaned exits.
            inner.notify_reaper();
        }
    }

    /// Effects everything a transition collected. On a reactor shard
    /// thread with the effect tier active, blocking effects (WAL fsync,
    /// job control, eviction deletes) are packaged into an
    /// [`EffectJob::Commit`] and submitted to the shard's effect queue
    /// — the shard thread never waits on disk or the launcher, and the
    /// helper executes the job with identical semantics via
    /// [`commit_inline`](Self::commit_inline). A purely non-durable
    /// outbox (hit-path `Failed`s, `Queued`, status) still flushes
    /// inline: socket staging is non-blocking. Everywhere else (reaper,
    /// helper threads, inline compatibility mode) the commit executes
    /// in place.
    fn commit(&self, inner: &Inner, fx: &mut Effects) {
        if let Some(pool) = inner.pool.get() {
            if let Some(shard) = crate::reactor::current_shard() {
                if self.commit_needs_helper(fx) {
                    let Some(ctx) = self.weak_self.upgrade() else {
                        return;
                    };
                    self.effects.offloaded.fetch_add(1, Ordering::Relaxed);
                    let job = EffectJob::Commit {
                        ctx,
                        fx: Box::new(std::mem::take(fx)),
                        wal_logged: false,
                    };
                    if pool.submit(shard, job) {
                        self.effects.queue_full.fetch_add(1, Ordering::Relaxed);
                    }
                } else {
                    self.flush_outbox(fx);
                }
                return;
            }
        }
        self.commit_inline(inner, fx, false);
    }

    /// Does executing `fx` involve a blocking operation (and so belong
    /// on a helper thread)? Job control means launcher I/O, evicts mean
    /// storage deletes, and on a durable context `Ready` responses and
    /// explicit records mean a WAL append + fsync.
    fn commit_needs_helper(&self, fx: &Effects) -> bool {
        fx.has_job_control()
            || !fx.evicts.is_empty()
            || !fx.wal_records.is_empty()
            || (self.wal.is_some()
                && fx
                    .outbox
                    .iter()
                    .any(|(_, r)| matches!(r, Response::Ready { .. })))
    }

    /// The commit loop itself: socket writes, job control, evictions.
    /// Launch failures feed back as `SimFailed` events until
    /// quiescence. Never holds a DV shard lock while doing I/O; runs on
    /// blocking-permitted threads only when the effect tier is active.
    /// `wal_logged` skips the first iteration's WAL pass when the batch
    /// executor already group-fsynced this commit's pin records.
    fn commit_inline(&self, inner: &Inner, fx: &mut Effects, mut wal_logged: bool) {
        let mut failed: Vec<SimId> = Vec::new();
        let mut sims_retired = false;
        loop {
            sims_retired |= !fx.kills.is_empty() || !fx.completed.is_empty();
            if !wal_logged {
                self.wal_log_outbox(fx);
            }
            wal_logged = false;
            self.flush_outbox(fx);
            self.apply_job_control(inner, fx, &mut failed);
            if !fx.evicts.is_empty() {
                // The evictions were decided under a shard lock we have
                // since released: an overlapping production may have
                // re-materialized a key meanwhile. Re-check under the
                // owning shard's lock so we do not delete files the
                // cache now believes in — grouped by shard so a burst
                // of evictions (usually all from the one shard whose
                // insert decided them) takes each contended lock once,
                // not once per key. The residual write-then-delete
                // window is inherent: simulators publish files before
                // their FileProduced message reaches the DV.
                {
                    let router = self.router;
                    fx.evicts
                        .sort_unstable_by_key(|&key| router.shard_of_key(key));
                    let (mut kept, mut i) = (0, 0);
                    while i < fx.evicts.len() {
                        let shard = router.shard_of_key(fx.evicts[i]);
                        let _rank = lockrank::held(lockrank::DV_SHARD);
                        let core = self.shards[shard].lock();
                        while i < fx.evicts.len()
                            && router.shard_of_key(fx.evicts[i]) == shard
                        {
                            let key = fx.evicts[i];
                            i += 1;
                            if !core.dv.is_cached(key) {
                                fx.evicts[kept] = key;
                                kept += 1;
                            }
                        }
                    }
                    fx.evicts.truncate(kept);
                }
                for key in fx.evicts.drain(..) {
                    lockrank::assert_blocking_ok("evict-delete");
                    let name = self.driver.filename_of(key);
                    let _ = self.storage.delete(&name);
                }
            }
            if failed.is_empty() {
                break;
            }
            for sim in failed.drain(..) {
                fx.completed.push(sim);
                self.transition(inner, DvEvent::SimFailed { sim }, fx);
            }
        }
        if sims_retired {
            // Sims finished, failed or were killed: a quiesce waiter
            // (shutdown) may now observe an idle context.
            inner.notify_quiesce();
            // A failure may have scheduled supervision work (a
            // backed-off retry, a quarantine expiry) with no job left
            // in flight to keep the reaper polling: wake it so it
            // re-arms its timer against the new earliest deadline.
            inner.notify_reaper();
        }
    }

    /// Earliest supervision deadline across this context's shards
    /// (parked retry launches, hang-watchdog deadlines, quarantine
    /// expiries); `None` when nothing is scheduled.
    fn supervision_due(&self, now: SimTime) -> Option<SimTime> {
        self.shards
            .iter()
            .filter_map(|shard| {
                let _rank = lockrank::held(lockrank::DV_SHARD);
                shard.lock().dv.next_due(now)
            })
            .min()
    }

    /// One supervision pass: fire each shard's watchdog/retry tick and
    /// commit the effects (hang kills, retry launches, typed failure
    /// notifications, quarantine expiries).
    fn supervise(&self, inner: &Inner, fx: &mut Effects) {
        let now = inner.now();
        for s in 0..self.shards.len() {
            self.with_shard(
                s,
                fx,
                |core| {
                    let DvCore { dv, actions, .. } = core;
                    dv.tick(now, actions);
                },
                |_, _| {},
            );
            self.commit(inner, fx);
        }
    }

    /// Appends `fx`'s durable records to an already-locked WAL without
    /// syncing: the explicit `wal_records` first, then a pin record for
    /// every `Ready` the outbox carries. Returns whether anything was
    /// appended — the caller owns the durability point, which is what
    /// lets the effect tier's batch executor fold the appends of a
    /// whole batch into one group fsync.
    fn wal_append_outbox(&self, w: &mut DaemonWal, fx: &mut Effects) -> bool {
        let mut any = false;
        for r in fx.wal_records.drain(..) {
            w.append(r);
            any = true;
        }
        for (client, resp) in &fx.outbox {
            if let Response::Ready { key, .. } = resp {
                // A Ready for a key this member does not own can only be
                // a takeover grant (untagged foreign acquires are
                // rejected before any Ready exists): journal it with the
                // takeover tag so the degraded-mode pins are
                // distinguishable in the log. The check is stateless —
                // deferred Readys (production completions) carry no
                // request context, but ownership is a pure function of
                // the key.
                let foreign = self.cluster.is_clustered()
                    && self.steps.valid_key(*key)
                    && !self.cluster.owns_key(&self.steps, *key);
                let record = if foreign {
                    WalRecord::TakeoverPin {
                        client: *client,
                        key: *key,
                        epoch: self.epoch,
                    }
                } else {
                    WalRecord::PinAcquire {
                        client: *client,
                        key: *key,
                        epoch: self.epoch,
                    }
                };
                w.append(record);
                any = true;
            }
        }
        any
    }

    /// Write-ahead ordering (tier 1b): every slow-path pin a transition
    /// granted shows up in the outbox as a `Ready` response; append and
    /// fsync those pin records (plus any explicit `wal_records`)
    /// *before* [`flush_outbox`](Self::flush_outbox) puts the frames on
    /// the wire, so a granted pin the client saw is always in the log.
    /// No-op without durability.
    fn wal_log_outbox(&self, fx: &mut Effects) {
        let Some(wal) = &self.wal else {
            fx.wal_records.clear();
            return;
        };
        if fx.outbox.is_empty() && fx.wal_records.is_empty() {
            return;
        }
        let _rank = lockrank::held(lockrank::WAL);
        let mut w = wal.lock();
        if self.wal_append_outbox(&mut w, fx) {
            w.sync_and_compact(self.epoch);
        }
    }

    /// Drains a connection's buffered fast-path pin window into the
    /// WAL: net out acquire/release pairs that cancelled within the
    /// window, then hand the survivors to `commit` as explicit
    /// `wal_records` — appended and fsynced inline, or by the effect
    /// tier's group-fsync pass when the pool is active. Called when the
    /// frame handler returns — after the replies, so a crash can lose a
    /// fast pin's record (the re-assertion protocol re-acquires it) but
    /// the log never claims a pin the client does not hold longer than
    /// one window. The effect tier stretches "one window" by its queue
    /// latency, which the same re-assertion protocol already covers.
    /// No-op without durability.
    fn wal_drain_local(&self, inner: &Inner, local: &mut ConnLocal, fx: &mut Effects) {
        if self.wal.is_none() || local.wal_pending.is_empty() {
            return;
        }
        walog::net_pin_window(&mut local.wal_pending);
        if local.wal_pending.is_empty() {
            return;
        }
        fx.wal_records.append(&mut local.wal_pending);
        self.commit(inner, fx);
    }

    /// Stages a durable departure for `client` (disconnect or lease
    /// expiry) into `fx`: voids all its pins and its lease in one
    /// record, written by the next commit's WAL pass.
    fn stage_client_gone(&self, fx: &mut Effects, client: ClientId) {
        if self.wal.is_some() {
            fx.wal_records.push(WalRecord::ClientGone {
                client,
                epoch: self.epoch,
            });
        }
    }

    /// Any recovery leases still waiting for re-assertion?
    fn has_leases(&self) -> bool {
        let _rank = lockrank::held(lockrank::LEASES);
        !self.leases.lock().is_empty()
    }

    /// Expires recovery leases past their deadline: each expired client
    /// gets a synthetic `ClientGone` (broadcast, releasing its restored
    /// pins) and a durable departure record — the backstop that keeps
    /// an unreturned client's crash-recovered pins from vetoing
    /// eviction forever. Driven from the reaper thread.
    fn expire_leases(&self, inner: &Inner, fx: &mut Effects) {
        let expired: Vec<ClientId> = {
            let _rank = lockrank::held(lockrank::LEASES);
            let mut leases = self.leases.lock();
            let now = Instant::now();
            let gone: Vec<ClientId> = leases
                .iter()
                .filter(|(_, deadline)| **deadline <= now)
                .map(|(client, _)| *client)
                .collect();
            for client in &gone {
                leases.remove(client);
            }
            gone
        };
        for client in expired {
            self.leases_expired.fetch_add(1, Ordering::Relaxed);
            self.stage_client_gone(fx, client);
            self.transition(inner, DvEvent::ClientGone { client }, fx);
            self.commit(inner, fx);
        }
    }

    /// Merged statistics snapshot: shard totals plus the fast-path and
    /// lock counters the shards never see. Also returns the active-sim
    /// total observed in the same per-shard lock acquisitions, so a
    /// Status reply is self-consistent per shard.
    fn stats_snapshot_with_active(&self) -> (DvStats, u64) {
        let mut total = DvStats::default();
        let mut active = 0u64;
        for shard in &self.shards {
            let _rank = lockrank::held(lockrank::DV_SHARD);
            let core = shard.lock();
            total.accumulate(core.dv.stats());
            active += core.dv.active_sims() as u64;
        }
        let fast_hits = self.fast.fast_hits();
        total.hits += fast_hits;
        total.acquired_fast = fast_hits;
        total.hit_fallbacks = self.fast.race_fallbacks();
        total.acquired_slow = self.perf.acquired_slow.load(Ordering::Relaxed);
        total.lock_wait_ns = self.perf.wait_ns.load(Ordering::Relaxed);
        total.lock_hold_ns = self.perf.hold_ns.load(Ordering::Relaxed);
        total.lock_transitions = self.perf.transitions.load(Ordering::Relaxed);
        total.accept_retries = self.accept_retries.load(Ordering::Relaxed);
        if let Some(wal) = &self.wal {
            let _rank = lockrank::held(lockrank::WAL);
            let w = wal.lock();
            total.wal_appends = w.log.appended();
            total.wal_syncs = w.log.syncs();
        }
        total.wal_replayed = self.wal_replayed;
        total.client_reconnects = self.client_reconnects.load(Ordering::Relaxed);
        total.leases_expired = self.leases_expired.load(Ordering::Relaxed);
        total.takeover_acquires = self.takeover_acquires.load(Ordering::Relaxed);
        total.takeover_intervals_primed = self.takeover_intervals_primed.load(Ordering::Relaxed);
        total.takeover_pins_handed_back = self.takeover_pins_handed_back.load(Ordering::Relaxed);
        total.effects_offloaded = self.effects.offloaded.load(Ordering::Relaxed);
        total.helper_queue_full = self.effects.queue_full.load(Ordering::Relaxed);
        total.effect_spawn_ns = self.effects.spawn_ns.load(Ordering::Relaxed);
        total.effect_spawn_ops = self.effects.spawn_ops.load(Ordering::Relaxed);
        total.effect_wal_ns = self.effects.wal_ns.load(Ordering::Relaxed);
        total.effect_wal_ops = self.effects.wal_ops.load(Ordering::Relaxed);
        total.effect_evict_ns = self.effects.evict_ns.load(Ordering::Relaxed);
        total.effect_evict_ops = self.effects.evict_ops.load(Ordering::Relaxed);
        total.effect_read_ns = self.effects.read_ns.load(Ordering::Relaxed);
        total.effect_read_ops = self.effects.read_ops.load(Ordering::Relaxed);
        (total, active)
    }

    fn stats_snapshot(&self) -> DvStats {
        self.stats_snapshot_with_active().0
    }

    /// Processes one analysis request; `false` ends the session.
    fn handle_analysis_request(
        &self,
        inner: &Inner,
        client: ClientId,
        req: Request,
        local: &mut ConnLocal,
        cx: &mut ConnCtx<'_>,
        fx: &mut Effects,
    ) -> bool {
        match req {
            Request::Acquire { req_id, keys } => {
                let mut slow_keys = 0u64;
                let mut rejected = false;
                let mut polluted = false;
                // Observation is a record, not a lock acquisition: in
                // prefetching contexts every locally observed key —
                // fast or slow — lands in the connection's digest log,
                // stamped with one epoch per request (a multi-key
                // acquire is one consumption point).
                let digest_on = self.digest && local.observe_local;
                let epoch = if digest_on { inner.now().as_nanos() } else { 0 };
                for &key in &keys {
                    // Layer 0 (clusters only): ownership. A key whose
                    // interval hashes to another daemon is refused — a
                    // correctly routing DVLib never sends one, and
                    // accepting it would double-produce the interval
                    // under a foreign budget slice. Invalid keys are
                    // exempt (no member owns them): they fall through
                    // to the DV for the same timeline error every
                    // daemon reports.
                    if self.cluster.is_clustered()
                        && self.steps.valid_key(key)
                        && !self.cluster.owns_key(&self.steps, key)
                    {
                        fx.outbox.push((
                            client,
                            Response::Failed {
                                req_id,
                                key,
                                code: FailCode::Other,
                                reason: format!(
                                    "key {key} belongs to cluster member {} (this is {} of {})",
                                    self.router_member_of(key),
                                    self.cluster.index,
                                    self.cluster.size
                                ),
                            },
                        ));
                        rejected = true;
                        continue;
                    }
                    // Layer 1: the lock-free hit path. A resident key is
                    // pinned through the concurrent index (the pin is
                    // eviction-visible before we reply) and answered
                    // straight into this connection's output buffer —
                    // no DV lock, no routing table.
                    if self.fast.try_hit_pin(key) {
                        *local.fast_pins.entry(key).or_insert(0) += 1;
                        if self.wal.is_some() {
                            local.wal_pending.push(WalRecord::PinAcquire {
                                client,
                                key,
                                epoch: self.epoch,
                            });
                        }
                        if digest_on {
                            // Served instantly: the epoch is a true
                            // ready point.
                            local.log.push(AccessRecord {
                                client,
                                key,
                                epoch,
                                ready: true,
                            });
                        }
                        local.scratch.push_response(&Response::Ready { req_id, key });
                        continue;
                    }
                    // Layer 2: the locked path, one shard lock per key
                    // (multi-key requests may span shards).
                    slow_keys += 1;
                    let now = inner.now();
                    let s = self.router.shard_of_key(key);
                    let mut resolved = true;
                    self.with_shard(
                        s,
                        fx,
                        |core| {
                            // Register interest before handling so a
                            // concurrent production cannot race past
                            // the notification.
                            core.pending.entry((client, key)).or_default().push(req_id);
                            let DvCore { dv, actions, .. } = core;
                            dv.handle_into(now, DvEvent::Acquire { client, key }, actions);
                        },
                        |core, fx| {
                            polluted |= core.dv.take_pollution_signal();
                            // Still pending after collect? Tell the
                            // client it is queued, with the wait
                            // estimate (§III-C).
                            if core.pending.contains_key(&(client, key)) {
                                resolved = false;
                                let est = core
                                    .dv
                                    .estimate_wait(key)
                                    .map_or(0, |d| d.as_nanos() / 1_000_000);
                                fx.outbox.push((
                                    client,
                                    Response::Queued {
                                        req_id,
                                        key,
                                        est_wait_ms: est,
                                    },
                                ));
                            }
                        },
                    );
                    if digest_on {
                        // A key that stayed pending blocks the client
                        // until production: its acquire-time epoch is
                        // not a ready point, so replay must not sample
                        // the following gap as consumption time.
                        local.log.push(AccessRecord {
                            client,
                            key,
                            epoch,
                            ready: resolved,
                        });
                    }
                }
                if !local.scratch.is_empty() {
                    cx.write(local.scratch.as_bytes());
                    local.scratch.clear();
                }
                if polluted {
                    // A §IV-C pollution reset fired in one shard; every
                    // shard holds its own replica of each client's
                    // agents, so the reset must reach them all (and set
                    // their stale-window discards) before the drain
                    // below replays anything. One lock at a time, as
                    // always.
                    for s in 0..self.shards.len() {
                        self.with_shard(
                            s,
                            fx,
                            |core| core.dv.apply_pollution_reset(),
                            |_, _| {},
                        );
                    }
                }
                if slow_keys > 0 {
                    self.perf
                        .acquired_slow
                        .fetch_add(slow_keys, Ordering::Relaxed);
                    // Piggyback the digest drain on a request that took
                    // shard locks anyway; pure-hit streams drain from
                    // the reactor tick instead.
                    self.drain_digest(inner, local, fx);
                } else if digest_on && local.log.len() >= DIGEST_HIGH_WATER {
                    // Adaptive drain: a saturated pure-hit stream can
                    // overflow the ring between 20 ms ticks; once it
                    // passes the high-water mark, pay the shard locks
                    // now instead of dropping the oldest records.
                    self.drain_digest(inner, local, fx);
                }
                if slow_keys > 0 || rejected {
                    self.commit(inner, fx);
                } else if !fx.outbox.is_empty() || fx.has_job_control() || !fx.evicts.is_empty() {
                    // The adaptive drain above may have planned
                    // prefetch launches; effect them.
                    self.commit(inner, fx);
                }
                true
            }
            Request::Release { key } => {
                if self.wal.is_some() {
                    local.wal_pending.push(WalRecord::PinRelease {
                        client,
                        key,
                        epoch: self.epoch,
                    });
                }
                // Fast pins are released with index atomics alone; pins
                // taken through the DV (miss productions) release
                // through the owning shard.
                if let Some(n) = local.fast_pins.get_mut(&key) {
                    *n -= 1;
                    if *n == 0 {
                        local.fast_pins.remove(&key);
                    }
                    self.fast.unpin(key, 1);
                    return true;
                }
                self.transition(inner, DvEvent::Release { client, key }, fx);
                self.commit(inner, fx);
                true
            }
            Request::Reassert {
                req_id,
                prior_client,
                prior_epoch,
                keys,
            } => {
                self.handle_reassert(inner, client, req_id, prior_client, prior_epoch, keys, fx);
                true
            }
            Request::Bitrep { req_id, key } => {
                // Pure storage I/O: never touches a DV lock. With the
                // effect tier active the read runs on a helper and the
                // reply routes back through the reactor registry; the
                // shard thread moves straight to its next frame.
                if let (Some(pool), Some(shard)) =
                    (inner.pool.get(), crate::reactor::current_shard())
                {
                    if let Some(ctx) = self.weak_self.upgrade() {
                        self.effects.offloaded.fetch_add(1, Ordering::Relaxed);
                        let job = EffectJob::BitrepRead {
                            ctx,
                            client,
                            req_id,
                            key,
                        };
                        if pool.submit(shard, job) {
                            self.effects.queue_full.fetch_add(1, Ordering::Relaxed);
                        }
                        return true;
                    }
                }
                fx.outbox.push((client, self.bitrep_response(req_id, key)));
                self.flush_outbox(fx);
                true
            }
            Request::Status { req_id } => {
                let (stats, active) = self.stats_snapshot_with_active();
                let resp = Response::StatusInfo {
                    req_id,
                    hits: stats.hits,
                    misses: stats.misses,
                    restarts: stats.restarts,
                    produced_steps: stats.produced_steps,
                    active_sims: active,
                };
                fx.outbox.push((client, resp));
                self.flush_outbox(fx);
                true
            }
            Request::AccessDigest { dropped, records } => {
                // A clustered DVLib session forwarding its full
                // pre-routing access stream (fire-and-forget, one frame
                // per coalesced write). Fold it into the connection log
                // — the ring bounds memory, so a hostile burst degrades
                // to drops, never growth — and drain now: the frame is
                // batched, so the lock cost is amortized. Contexts
                // without agents ignore digests.
                if self.digest {
                    local.log.note_dropped(dropped);
                    for (key, epoch, ready) in records {
                        local.log.push(AccessRecord {
                            client,
                            key,
                            epoch,
                            ready,
                        });
                    }
                    self.drain_digest(inner, local, fx);
                    self.commit(inner, fx);
                }
                true
            }
            Request::TakeoverAcquire {
                req_id,
                dead_member,
                origin_epoch,
                keys,
            } => {
                self.handle_takeover_acquire(
                    inner,
                    client,
                    req_id,
                    dead_member,
                    origin_epoch,
                    keys,
                    local,
                    cx,
                    fx,
                );
                true
            }
            Request::HandBack { req_id, keys, .. } => {
                self.handle_hand_back(inner, client, req_id, keys, local, fx);
                true
            }
            Request::Bye => false,
            _ => {
                fx.outbox.push((
                    client,
                    Response::Error {
                        message: "unexpected analysis request".to_string(),
                    },
                ));
                self.flush_outbox(fx);
                false
            }
        }
    }

    /// A reconnecting client re-claiming the pins it held before its
    /// connection (or this daemon) died. Three cases, answered per key
    /// so the client knows exactly what to re-acquire:
    ///
    /// * **Same epoch** — the daemon never restarted, so the dropped
    ///   connection's `ClientGone` already released everything: all
    ///   keys come back `gone`.
    /// * **Cross epoch, lease live** — the daemon recovered and holds
    ///   the prior client's restored pins under a lease: each key still
    ///   held transfers to the new session (`restored`); keys the
    ///   recovery could not restore (evicted, or their record was lost
    ///   to the crash) come back `gone`. The prior identity is then
    ///   retired with a `ClientGone` broadcast, releasing any restored
    ///   pins the client no longer wanted.
    /// * **Cross epoch, lease expired or unknown** — the reaper already
    ///   released the pins: all keys come back `gone`.
    #[allow(clippy::too_many_arguments)]
    fn handle_reassert(
        &self,
        inner: &Inner,
        client: ClientId,
        req_id: u64,
        prior_client: u64,
        prior_epoch: u64,
        keys: Vec<u64>,
        fx: &mut Effects,
    ) {
        let mut restored: Vec<u64> = Vec::new();
        let mut gone: Vec<(u64, String)> = Vec::new();
        if prior_epoch == self.epoch {
            for key in keys {
                gone.push((
                    key,
                    format!(
                        "same-epoch reconnect: pins of client {prior_client} were released \
                         when its connection dropped; re-acquire"
                    ),
                ));
            }
        } else {
            // Claimed exactly once: a second session presenting the
            // same prior identity races the first's ClientGone.
            let lease = {
                let _rank = lockrank::held(lockrank::LEASES);
                self.leases.lock().remove(&prior_client)
            };
            let lease_live = lease.is_some_and(|deadline| Instant::now() < deadline);
            if !lease_live {
                for key in keys {
                    gone.push((
                        key,
                        format!(
                            "recovery lease of client {prior_client} (epoch {prior_epoch}) \
                             expired or unknown; re-acquire"
                        ),
                    ));
                }
                if lease.is_some() {
                    // Expired but not yet reaped: release the restored
                    // pins now instead of leaving them to the reaper's
                    // next pass (we just took the lease entry it would
                    // have acted on).
                    self.leases_expired.fetch_add(1, Ordering::Relaxed);
                    self.stage_client_gone(fx, prior_client);
                    self.transition(inner, DvEvent::ClientGone { client: prior_client }, fx);
                }
            } else {
                for key in keys {
                    let mut moved = false;
                    self.with_shard(
                        self.router.shard_of_key(key),
                        fx,
                        |core| moved = core.dv.transfer_pin(prior_client, client, key),
                        |_, _| {},
                    );
                    if moved {
                        restored.push(key);
                    } else {
                        gone.push((
                            key,
                            format!(
                                "key {key} was not recovered (evicted, or its pin record \
                                 was lost to the crash); re-acquire"
                            ),
                        ));
                    }
                }
                // Retire the prior identity: releases restored pins the
                // client did not re-claim, clears stale waiter state.
                // The transferred pins and the departure go into the
                // commit's WAL pass as explicit records, appended and
                // fsynced before the `Reasserted` frame is sent.
                self.transition(inner, DvEvent::ClientGone { client: prior_client }, fx);
                if self.wal.is_some() {
                    for &key in &restored {
                        fx.wal_records.push(WalRecord::PinAcquire {
                            client,
                            key,
                            epoch: self.epoch,
                        });
                    }
                    fx.wal_records.push(WalRecord::ClientGone {
                        client: prior_client,
                        epoch: self.epoch,
                    });
                }
            }
        }
        fx.outbox.push((
            client,
            Response::Reasserted {
                req_id,
                epoch: self.epoch,
                restored,
                gone,
            },
        ));
        self.commit(inner, fx);
    }

    /// Serves an explicit takeover acquire: keys of a *dead* member's
    /// intervals, asserted down by the client and routed here by the
    /// successor rule. The request-level claim is validated (this
    /// member must not be the "dead" one; the index must exist), then
    /// per key: a valid key must actually route to the dead member.
    /// First touch of a foreign interval rebuilds its residency from
    /// the shared storage area (the recovery rescan, scoped to one
    /// interval); from there keys serve exactly like native acquires —
    /// fast path, shard transitions, re-simulation under *this*
    /// member's budget — with pins journaled under the takeover tag.
    /// Takeover keys skip digest observation: this member's prefetch
    /// agents must not learn trajectories it will hand back.
    #[allow(clippy::too_many_arguments)]
    fn handle_takeover_acquire(
        &self,
        inner: &Inner,
        client: ClientId,
        req_id: u64,
        dead_member: u32,
        origin_epoch: u64,
        keys: Vec<u64>,
        local: &mut ConnLocal,
        cx: &mut ConnCtx<'_>,
        fx: &mut Effects,
    ) {
        let reject_all = if !self.cluster.is_clustered() {
            Some("takeover acquire on an unclustered daemon".to_string())
        } else if dead_member >= self.cluster.size {
            Some(format!(
                "takeover of member {dead_member} (takeover epoch {origin_epoch}): \
                 cluster has {} members",
                self.cluster.size
            ))
        } else if dead_member == self.cluster.index {
            Some(format!(
                "takeover of member {dead_member} (takeover epoch {origin_epoch}): \
                 that member is this daemon, and it is alive"
            ))
        } else {
            None
        };
        if let Some(reason) = reject_all {
            for key in keys {
                fx.outbox.push((
                    client,
                    Response::Failed {
                        req_id,
                        key,
                        code: FailCode::Other,
                        reason: reason.clone(),
                    },
                ));
            }
            self.flush_outbox(fx);
            return;
        }
        self.takeover_acquires.fetch_add(1, Ordering::Relaxed);
        let mut slow_keys = 0u64;
        for &key in &keys {
            if self.steps.valid_key(key) {
                let owner = self.router_member_of(key);
                if owner != dead_member {
                    let reason = if owner == self.cluster.index {
                        format!(
                            "key {key} belongs to this member ({owner}); \
                             acquire it without the takeover tag"
                        )
                    } else {
                        format!(
                            "key {key} belongs to member {owner}, not to dead member \
                             {dead_member} (takeover epoch {origin_epoch})"
                        )
                    };
                    fx.outbox.push((
                        client,
                        Response::Failed {
                            req_id,
                            key,
                            code: FailCode::Other,
                            reason,
                        },
                    ));
                    continue;
                }
                fx.evicts
                    .extend(self.prime_takeover_interval(self.steps.interval_of(key)));
            }
            // Invalid keys fall through to the DV for the same timeline
            // error every daemon reports.
            if self.fast.try_hit_pin(key) {
                *local.fast_pins.entry(key).or_insert(0) += 1;
                if self.wal.is_some() {
                    local.wal_pending.push(WalRecord::TakeoverPin {
                        client,
                        key,
                        epoch: self.epoch,
                    });
                }
                local.scratch.push_response(&Response::Ready { req_id, key });
                continue;
            }
            slow_keys += 1;
            let now = inner.now();
            let s = self.router.shard_of_key(key);
            self.with_shard(
                s,
                fx,
                |core| {
                    core.pending.entry((client, key)).or_default().push(req_id);
                    let DvCore { dv, actions, .. } = core;
                    dv.handle_into(now, DvEvent::Acquire { client, key }, actions);
                },
                |core, fx| {
                    if core.pending.contains_key(&(client, key)) {
                        let est = core
                            .dv
                            .estimate_wait(key)
                            .map_or(0, |d| d.as_nanos() / 1_000_000);
                        fx.outbox.push((
                            client,
                            Response::Queued {
                                req_id,
                                key,
                                est_wait_ms: est,
                            },
                        ));
                    }
                },
            );
        }
        if !local.scratch.is_empty() {
            cx.write(local.scratch.as_bytes());
            local.scratch.clear();
        }
        if slow_keys > 0 {
            self.perf.acquired_slow.fetch_add(slow_keys, Ordering::Relaxed);
        }
        self.commit(inner, fx);
    }

    /// Rebuilds cache residency for one foreign restart interval from
    /// the shared storage area — the first-takeover-touch half of the
    /// `--recover` rescan, scoped to one interval. Idempotent: primed
    /// intervals are remembered. Returns the keys the insertions
    /// evicted under this member's budget, for the caller's deferred
    /// delete path ([`Effects::evicts`] re-checks under the shard lock).
    fn prime_takeover_interval(&self, interval: u64) -> Vec<u64> {
        let _rank = lockrank::held(lockrank::TAKEOVER_PRIMED);
        let mut primed = self.takeover_primed.lock();
        if primed.contains(&interval) {
            return Vec::new();
        }
        let mut evicted = Vec::new();
        if let Ok(files) = self.storage.list() {
            for file in files {
                let Some(key) = self.driver.key_of(&file) else {
                    continue;
                };
                if !self.steps.valid_key(key) || self.steps.interval_of(key) != interval {
                    continue;
                }
                let size = self.storage.size_of(&file).unwrap_or(0);
                let _shard_rank = lockrank::held(lockrank::DV_SHARD);
                let mut core = self.shards[self.router.shard_of_key(key)].lock();
                evicted.extend(core.dv.prime(key, size));
            }
        }
        primed.insert(interval);
        self.takeover_intervals_primed.fetch_add(1, Ordering::Relaxed);
        evicted
    }

    /// Drains this session's takeover pins for a restarted member: one
    /// release per listed key occurrence, journaled like native
    /// releases. The client re-acquires at the restarted home member
    /// *before* sending this, so the residency veto never lapses across
    /// the hand-back; releases of keys the session does not hold are DV
    /// no-ops.
    fn handle_hand_back(
        &self,
        inner: &Inner,
        client: ClientId,
        req_id: u64,
        keys: Vec<u64>,
        local: &mut ConnLocal,
        fx: &mut Effects,
    ) {
        let released = keys.len() as u64;
        for &key in &keys {
            if self.wal.is_some() {
                local.wal_pending.push(WalRecord::PinRelease {
                    client,
                    key,
                    epoch: self.epoch,
                });
            }
            if let Some(n) = local.fast_pins.get_mut(&key) {
                *n -= 1;
                if *n == 0 {
                    local.fast_pins.remove(&key);
                }
                self.fast.unpin(key, 1);
                continue;
            }
            self.transition(inner, DvEvent::Release { client, key }, fx);
        }
        self.takeover_pins_handed_back.fetch_add(released, Ordering::Relaxed);
        fx.outbox.push((client, Response::HandedBack { req_id, released }));
        self.commit(inner, fx);
    }

    /// Drains the connection's access log into the prefetch agents
    /// (layer 1a): records replay into *every* shard under its lock —
    /// each agent replica must observe the full sequence — while
    /// planning and accounting stay partitioned by interval ownership,
    /// so the shards' prefetch launches compose without overlap. Drop
    /// counts fold into shard 0's stats (one shard must own them or
    /// roll-ups would multiply).
    fn drain_digest(&self, inner: &Inner, local: &mut ConnLocal, fx: &mut Effects) {
        if !self.digest || local.log.is_empty() {
            return;
        }
        local.drain_scratch.clear();
        let dropped = local.log.drain_into(&mut local.drain_scratch);
        let records = &local.drain_scratch;
        let now = inner.now();
        let router = self.router;
        let cluster = self.cluster;
        let steps = self.steps;
        for s in 0..self.shards.len() {
            self.with_shard(
                s,
                fx,
                |core| {
                    if s == 0 && dropped > 0 {
                        core.dv.note_digest_dropped(dropped);
                    }
                    let owns = |key: u64| {
                        cluster.owns_key(&steps, key) && router.shard_of_key(key) == s
                    };
                    let DvCore { dv, actions, .. } = core;
                    dv.ingest_digest(now, records, dropped, &owns, actions);
                },
                |_, _| {},
            );
        }
    }

    /// Tears down an analysis session: drops the routing entry, returns
    /// the connection's fast pins, clears pending request bookkeeping
    /// in every shard, releases the client's DV-side pins via
    /// `ClientGone`.
    fn analysis_disconnect(
        &self,
        inner: &Inner,
        client: ClientId,
        local: &mut ConnLocal,
        fx: &mut Effects,
    ) {
        self.reactor.unregister(client);
        for (key, pins) in local.fast_pins.drain() {
            self.fast.unpin(key, pins);
        }
        for shard in &self.shards {
            let _rank = lockrank::held(lockrank::DV_SHARD);
            let mut core = shard.lock();
            core.pending.retain(|(c, _), _| *c != client);
        }
        // Durable departure: one ClientGone voids every logged pin of
        // this session, so the buffered fast-pin window can simply be
        // dropped — nothing in it could survive the departure. The
        // record rides the commit's WAL pass.
        if self.wal.is_some() {
            local.wal_pending.clear();
            self.stage_client_gone(fx, client);
        }
        self.transition(inner, DvEvent::ClientGone { client }, fx);
        self.commit(inner, fx);
    }

    /// Computes a `Bitrep` reply: read the materialized file, checksum
    /// it, compare against the recorded reference. Blocking (storage
    /// read) — runs on a helper when the effect tier is active.
    fn bitrep_response(&self, req_id: u64, key: u64) -> Response {
        lockrank::assert_blocking_ok("bitrep-read");
        let name = self.driver.filename_of(key);
        let result = self.storage.read(&name).ok().map(|bytes| {
            let sum = self.driver.checksum(&bytes);
            match self.checksums.get(&key) {
                Some(recorded) => (sum == *recorded, true),
                None => (false, false),
            }
        });
        match result {
            Some((matches, known)) => Response::BitrepResult {
                req_id,
                key,
                matches,
                known,
            },
            None => Response::Failed {
                req_id,
                key,
                code: FailCode::Other,
                reason: "file not materialized; acquire it first".to_string(),
            },
        }
    }

    /// Output-integrity gate: a file a simulator claims to have
    /// produced must exist, structurally verify as SDF when it carries
    /// the SDF magic, and match the recorded `SIMFS_Bitrep` checksum
    /// when one exists for the key. Returns why the file is
    /// unacceptable, or `Ok` to admit it to residency.
    fn verify_produced(&self, key: u64) -> Result<(), String> {
        lockrank::assert_blocking_ok("verify-read");
        let name = self.driver.filename_of(key);
        let bytes = self
            .storage
            .read(&name)
            .map_err(|e| format!("claimed output {name} unreadable: {e}"))?;
        if simstore::sdf::looks_like_sdf(&bytes) {
            simstore::sdf::verify(&bytes)
                .map_err(|e| format!("produced {name} fails SDF verification: {e}"))?;
        }
        if let Some(&recorded) = self.checksums.get(&key) {
            let produced = self.driver.checksum(&bytes);
            if produced != recorded {
                return Err(format!(
                    "produced {name} checksum {produced:#018x} differs from \
                     recorded {recorded:#018x}"
                ));
            }
        }
        Ok(())
    }

    /// Processes one simulator request; `false` ends the session. With
    /// the effect tier active the event is submitted to this shard's
    /// effect queue — output verification (a storage read), the
    /// transition and the commit all run on a helper, and per-shard
    /// queue FIFO keeps the sim's events in wire order (`FileProduced`
    /// before `SimFinished`).
    fn handle_simulator_request(
        &self,
        inner: &Inner,
        sim: SimId,
        req: Request,
        finished: &mut bool,
        fx: &mut Effects,
    ) -> bool {
        let event = match req {
            Request::SimStarted => SimWireEvent::Started,
            Request::FileProduced { key, size } => SimWireEvent::Produced { key, size },
            Request::SimFinished => {
                *finished = true;
                SimWireEvent::Finished
            }
            _ => return false, // Bye or protocol error: drop the session
        };
        self.submit_sim_event(inner, sim, event, fx);
        !*finished
    }

    /// Routes one simulator event: to the effect tier on an active-pool
    /// shard thread, inline everywhere else.
    fn submit_sim_event(&self, inner: &Inner, sim: SimId, event: SimWireEvent, fx: &mut Effects) {
        if let (Some(pool), Some(shard)) = (inner.pool.get(), crate::reactor::current_shard()) {
            if let Some(ctx) = self.weak_self.upgrade() {
                self.effects.offloaded.fetch_add(1, Ordering::Relaxed);
                if pool.submit(shard, EffectJob::SimEvent { ctx, sim, event }) {
                    self.effects.queue_full.fetch_add(1, Ordering::Relaxed);
                }
                return;
            }
        }
        self.apply_sim_event(inner, sim, event, fx);
    }

    /// Verifies (where the event claims output), transitions and
    /// commits one simulator event. Runs on a helper thread when the
    /// effect tier is active, inline otherwise.
    fn apply_sim_event(&self, inner: &Inner, sim: SimId, event: SimWireEvent, fx: &mut Effects) {
        let event = match event {
            SimWireEvent::Started => DvEvent::SimStarted { sim },
            SimWireEvent::Produced { key, size } => match self.verify_produced(key) {
                Ok(()) => DvEvent::FileProduced { sim, key, size },
                Err(_why) => {
                    // Never let a bad file reach residency: delete it so
                    // a retry re-produces from scratch, then hand the DV
                    // the corruption (kills the producer, colours the
                    // interval's retry state).
                    let _ = self.storage.delete(&self.driver.filename_of(key));
                    DvEvent::OutputCorrupt { sim, key }
                }
            },
            SimWireEvent::Finished => {
                fx.completed.push(sim);
                DvEvent::SimFinished { sim }
            }
            SimWireEvent::Failed => {
                fx.completed.push(sim);
                DvEvent::SimFailed { sim }
            }
        };
        self.transition(inner, event, fx);
        self.commit(inner, fx);
    }

    /// Tears down a simulator session; a connection dying before
    /// `SimFinished` means the re-simulation failed. The failure event
    /// rides the same per-shard effect queue as the session's protocol
    /// events, so it cannot overtake a still-queued `FileProduced`.
    fn simulator_disconnect(&self, inner: &Inner, sim: SimId, finished: bool, fx: &mut Effects) {
        if !finished {
            self.submit_sim_event(inner, sim, SimWireEvent::Failed, fx);
        }
        // Collect any already-exited jobs while we are here (launchers
        // report each exit exactly once, so the results must be applied,
        // not dropped — a discarded exit would hang its waiters forever).
        self.reap_exits(inner, fx);
    }

    /// Drains the launcher's exited jobs and applies them as DV events.
    /// Unknown sims (already finished via the protocol) are no-ops
    /// inside the DV.
    fn reap_exits(&self, inner: &Inner, fx: &mut Effects) {
        for (job, success) in self.launcher.reap() {
            let event = if success {
                DvEvent::SimFinished { sim: job.0 }
            } else {
                DvEvent::SimFailed { sim: job.0 }
            };
            fx.completed.push(job.0);
            self.transition(inner, event, fx);
            self.commit(inner, fx);
        }
    }
}

/// Executes one drained batch of effect jobs on a helper thread
/// (blocking-permitted). Two phases:
///
/// 1. **Group fsync.** Every WAL append the batch carries — `Ready` pin
///    records and explicit `wal_records` of `Commit` jobs — is written
///    first, then each dirty context syncs *once*. Write-ahead ordering
///    is preserved batch-wide: no frame of any job goes on the wire
///    before every pin record of the batch is durable (strictly
///    stronger than the per-commit ordering the inline path provides).
/// 2. **Execution in submission order.** Each job then runs through the
///    same code the inline path uses (`commit_inline`,
///    `apply_sim_event`, `bitrep_response`), with its WAL pass skipped
///    where phase 1 already covered it. Per-class latency lands in the
///    owning context's [`EffectPerf`].
///
/// Helpers themselves call `commit` → `commit_inline` recursively (a
/// launch failure feeding back as `SimFailed`, a reap): those nested
/// commits run inline on the helper — `current_shard()` is `None` here
/// — so a helper never submits to the pool and backpressure cannot
/// deadlock.
fn execute_effect_batch(inner: &Inner, mut jobs: Vec<EffectJob>) {
    let mut dirty: Vec<Arc<CtxRuntime>> = Vec::new();
    for job in &mut jobs {
        if let EffectJob::Commit { ctx, fx, wal_logged } = job {
            if let Some(wal) = &ctx.wal {
                if !fx.outbox.is_empty() || !fx.wal_records.is_empty() {
                    let _rank = lockrank::held(lockrank::WAL);
                    let mut w = wal.lock();
                    if ctx.wal_append_outbox(&mut w, fx) && !dirty.iter().any(|c| Arc::ptr_eq(c, ctx)) {
                        dirty.push(Arc::clone(ctx));
                    }
                }
                *wal_logged = true;
            }
        }
    }
    for ctx in &dirty {
        if let Some(wal) = &ctx.wal {
            let _rank = lockrank::held(lockrank::WAL);
            wal.lock().sync_and_compact(ctx.epoch);
        }
    }
    for job in jobs {
        let t0 = Instant::now();
        match job {
            EffectJob::Commit {
                ctx,
                mut fx,
                wal_logged,
            } => {
                let class = if fx.has_job_control() {
                    EffectClass::Spawn
                } else if !fx.evicts.is_empty() {
                    EffectClass::Evict
                } else {
                    EffectClass::Wal
                };
                ctx.commit_inline(inner, &mut fx, wal_logged);
                ctx.effects.record(class, t0.elapsed());
            }
            EffectJob::SimEvent { ctx, sim, event } => {
                let mut fx = Effects::default();
                ctx.apply_sim_event(inner, sim, event, &mut fx);
                ctx.effects.record(EffectClass::Read, t0.elapsed());
            }
            EffectJob::BitrepRead {
                ctx,
                client,
                req_id,
                key,
            } => {
                let mut fx = Effects::default();
                fx.outbox.push((client, ctx.bitrep_response(req_id, key)));
                ctx.flush_outbox(&mut fx);
                ctx.effects.record(EffectClass::Read, t0.elapsed());
            }
        }
    }
}

/// A running DV daemon; dropping it (or calling
/// [`shutdown`](DvServer::shutdown)) stops the accept loop.
pub struct DvServer {
    inner: Arc<Inner>,
}

impl DvServer {
    /// Binds and starts a single-context daemon. Pre-existing files in
    /// the storage area (the initial simulation's output) are primed
    /// into the cache.
    pub fn start(config: ServerConfig, bind: &str) -> io::Result<DvServer> {
        Self::start_multi(vec![config], bind)
    }

    /// Binds and starts a daemon serving several simulation contexts
    /// (§II) on one address; clients route by context name at hello
    /// time. Thread topology takes [`DaemonTuning::default`]: auto
    /// reactor shards, effect tier on with one helper per shard.
    ///
    /// # Panics
    /// Panics on duplicate context names — a configuration error.
    pub fn start_multi(configs: Vec<ServerConfig>, bind: &str) -> io::Result<DvServer> {
        Self::start_tuned(configs, bind, DaemonTuning::default())
    }

    /// [`start_multi`](Self::start_multi) with explicit thread-topology
    /// knobs (reactor shard count, effect-tier helper count and queue
    /// capacity — see [`DaemonTuning`]).
    ///
    /// # Panics
    /// Panics on duplicate context names — a configuration error.
    pub fn start_tuned(
        configs: Vec<ServerConfig>,
        bind: &str,
        tuning: DaemonTuning,
    ) -> io::Result<DvServer> {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;

        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let reactor_shards = if tuning.reactor_shards == 0 {
            cores
        } else {
            tuning.reactor_shards
        };
        // Helper default: one per reactor shard, so every submission
        // queue has a dedicated drainer and per-queue FIFO is an
        // execution order. The reactor's shard threads are marked
        // non-blocking exactly when the tier will be there to take the
        // blocking work off them.
        let reactor = Reactor::start_tuned(reactor_shards, tuning.effect_helpers != Some(0))?;
        let effect_helpers = tuning.effect_helpers.unwrap_or(reactor.shard_count());
        let accept_wake = EventFd::new()?;

        let mut contexts = HashMap::new();
        let mut prime_work: Vec<(Arc<CtxRuntime>, Vec<u64>)> = Vec::new();
        let accept_retries = Arc::new(AtomicU64::new(0));
        // Client ids must never collide with a recovered instance's
        // (their pins live on under the old ids until re-asserted or
        // lease-expired); recovery raises the floor past every id the
        // WAL knew.
        let mut next_client_floor = 1u64;
        for config in configs {
            let name = config.ctx.name.clone();
            let cluster = config.cluster;
            assert!(
                cluster.index < cluster.size,
                "cluster index {} out of range 0..{}",
                cluster.index,
                cluster.size
            );
            // The launch slots available to *this member* (the cluster
            // takes its 1/K slice before intra-process sharding).
            let member_smax = crate::dv::shard_cfg(&config.ctx, cluster.size).smax;
            let n_shards = if config.dv_shards == 0 {
                // Clamped by the member's `s_max` slice: each shard
                // runs at least one sim (see `shard_cfg`), so more
                // shards than launch slots would silently raise the
                // configured cap. Prefetching contexts shard too — the
                // access-stream digest replays the full sequence into
                // every shard's agents, so sharding no longer splits
                // what they observe.
                (cores as u32).min(4).min(member_smax)
            } else {
                config.dv_shards
            }
            .max(1);
            // The lock-free hit layer serves every context. Prefetching
            // contexts decouple observation from acquisition: fast hits
            // are *recorded* into the per-connection digest and replayed
            // into the agents out-of-band instead of taking a DV lock.
            let fast = Arc::new(HitIndex::new(HIT_INDEX_SHARDS));
            let digest = config.ctx.prefetch;
            // The shard composition (per-member and per-shard cfg
            // slices, cluster-wide sim-id striding, routing) comes from
            // `ShardedDv` — the reference object the CI-pinned
            // equivalence tests verify — so the daemon cannot silently
            // drift from the sharding contract, clustered or not.
            let (mut shards, router) =
                ShardedDv::cluster_member(config.ctx.clone(), n_shards, cluster).into_parts();
            for dv in &mut shards {
                dv.attach_index(Arc::clone(&fast));
                dv.set_digest_observation(digest);
            }

            // Prime: everything already on disk is cached state, routed
            // to its owning shard. On a shared storage area a cluster
            // member skips the intervals it does not own — they are
            // another daemon's cached state, not ours to budget or
            // evict.
            let steps = config.ctx.steps;
            let mut evicted = Vec::new();
            for file in config.storage.list()? {
                if let Some(key) = config.driver.key_of(&file) {
                    if !cluster.owns_key(&steps, key) {
                        continue;
                    }
                    let size = config.storage.size_of(&file).unwrap_or(0);
                    evicted.extend(shards[router.shard_of_key(key)].prime(key, size));
                }
            }

            // Tier 1b: open the WAL (one per cluster member, named so
            // priming's `key_of` never mistakes it for an output step),
            // replay it, and — with `recover` — restore the previous
            // instance's pins under a fresh epoch and lease them to
            // their owners' return.
            let mut wal = None;
            let mut epoch = 0u64;
            let mut wal_replayed = 0u64;
            let mut leases: HashMap<u64, Instant> = HashMap::new();
            if config.durability.wal {
                let path = config
                    .storage
                    .root()
                    .join(format!("dv-member-{}.wal", cluster.index));
                let (mut log, records, report) = WriteAheadLog::open(path)?;
                wal_replayed = report.records;
                let replayed = WalState::replay(&records);
                // Strictly above every epoch the log has seen, even
                // without recovery — a cross-epoch reassert must never
                // be mistaken for a same-instance reconnect.
                epoch = replayed.epoch + 1;
                let mut state = WalState {
                    epoch,
                    ..WalState::default()
                };
                if config.durability.recover {
                    // Priming already rebuilt the cache directory from
                    // the storage area; restore each replayed pin whose
                    // key is actually resident (one restore per count).
                    let deadline = Instant::now() + config.durability.lease_timeout;
                    let mut pins: Vec<(&(u64, u64), &u32)> = replayed.pins.iter().collect();
                    pins.sort_unstable();
                    for (&(client, key), &count) in pins {
                        let shard = &mut shards[router.shard_of_key(key)];
                        for _ in 0..count {
                            if !shard.restore_pin(client, key) {
                                break;
                            }
                            *state.pins.entry((client, key)).or_insert(0) += 1;
                        }
                    }
                    for client in state.live_clients() {
                        state.leases.push(client);
                        leases.insert(client, deadline);
                        next_client_floor = next_client_floor.max(client + 1);
                    }
                }
                // Checkpoint: the log now holds exactly the recovered
                // state under the new epoch — replay cost is bounded by
                // live pins, not daemon uptime.
                log.compact(&state.snapshot(epoch))?;
                wal = Some(Mutex::new(DaemonWal { log, state }));
            }
            let runtime = Arc::new_cyclic(|weak_self| CtxRuntime {
                name: name.clone(),
                weak_self: weak_self.clone(),
                shards: shards
                    .into_iter()
                    .map(|dv| {
                        Mutex::new(DvCore {
                            dv,
                            pending: HashMap::new(),
                            actions: Vec::new(),
                        })
                    })
                    .collect(),
                router,
                cluster,
                steps,
                fast,
                digest,
                perf: LockPerf::default(),
                effects: EffectPerf::default(),
                reactor: Arc::clone(&reactor),
                ledger: Mutex::new(LaunchLedger::default()),
                driver: config.driver,
                storage: config.storage,
                launcher: config.launcher,
                checksums: config.checksums,
                accept_retries: Arc::clone(&accept_retries),
                wal,
                epoch,
                wal_replayed,
                leases: Mutex::new(leases),
                client_reconnects: AtomicU64::new(0),
                leases_expired: AtomicU64::new(0),
                takeover_primed: Mutex::new(HashSet::new()),
                takeover_acquires: AtomicU64::new(0),
                takeover_intervals_primed: AtomicU64::new(0),
                takeover_pins_handed_back: AtomicU64::new(0),
            });
            prime_work.push((Arc::clone(&runtime), evicted));
            let previous = contexts.insert(name.clone(), runtime);
            assert!(previous.is_none(), "duplicate context name {name:?}");
        }

        let inner = Arc::new(Inner {
            contexts,
            epoch: Instant::now(),
            addr,
            next_client: AtomicU64::new(next_client_floor),
            shutdown: AtomicBool::new(false),
            reactor,
            accept_wake,
            reap_signal: (StdMutex::new(false), Condvar::new()),
            quiesce: (StdMutex::new(()), Condvar::new()),
            accept_retries,
            pool: std::sync::OnceLock::new(),
        });

        // The effect tier: one bounded queue per reactor shard, drained
        // by helper threads running `execute_effect_batch`. Built
        // before the accept loop admits any connection; the executor
        // holds only a weak reference, so the pool does not keep the
        // daemon alive.
        if effect_helpers > 0 {
            let weak = Arc::downgrade(&inner);
            let pool = crate::effectpool::EffectPool::start(
                inner.reactor.shard_count(),
                effect_helpers,
                tuning.effect_queue_cap.max(1),
                Arc::new(move |jobs| {
                    if let Some(inner) = weak.upgrade() {
                        execute_effect_batch(&inner, jobs);
                    }
                }),
            )?;
            let _ = inner.pool.set(pool);
        }

        // Delete whatever the priming evicted (storage shrunk between
        // runs).
        for (runtime, evicted) in prime_work {
            for key in evicted {
                let name = runtime.driver.filename_of(key);
                let _ = runtime.storage.delete(&name);
            }
        }

        Self::spawn_accept_loop(&inner, listener)?;

        // Reaper: a launched job can die before it ever connects (bad
        // restart file, scheduler rejection). While jobs are in flight,
        // poll every launcher and translate orphaned exits into
        // SimFailed/SimFinished so waiting analyses get an answer
        // instead of a hang; while nothing runs, park on the condvar —
        // an idle daemon makes zero syscalls.
        let reap_inner = Arc::clone(&inner);
        std::thread::Builder::new()
            .name("dv-reaper".into())
            .spawn(move || run_reaper(&reap_inner))?;
        Ok(DvServer { inner })
    }

    fn spawn_accept_loop(inner: &Arc<Inner>, listener: TcpListener) -> io::Result<()> {
        // Event-driven accept: one epoll over the listener and the
        // shutdown eventfd, so shutdown unblocks instantly.
        listener.set_nonblocking(true)?;
        let epoll = Epoll::new()?;
        epoll.add(listener.as_raw_fd(), EPOLLIN, 0)?;
        epoll.add(inner.accept_wake.fd(), EPOLLIN, 1)?;
        let inner = Arc::clone(inner);
        std::thread::Builder::new().name("dv-accept".into()).spawn(move || {
            // Transient-error backoff: under fd exhaustion (EMFILE) the
            // level-triggered epoll re-reports the un-accepted
            // connection on every wait, so a fixed short sleep spins
            // the loop at 100 Hz for as long as the condition lasts.
            // Double the sleep per consecutive failure (bounded), reset
            // on the first successful accept.
            const BACKOFF_MIN: Duration = Duration::from_millis(10);
            const BACKOFF_MAX: Duration = Duration::from_secs(1);
            let mut backoff = BACKOFF_MIN;
            let mut events = [EpollEvent::default(); 4];
            loop {
                let _ = epoll.wait(&mut events, -1);
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                loop {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            backoff = BACKOFF_MIN;
                            if stream.set_nonblocking(true).is_err() {
                                continue;
                            }
                            let _ = stream.set_nodelay(true);
                            inner.reactor.submit(
                                stream,
                                Box::new(EpollConn {
                                    inner: Arc::clone(&inner),
                                    state: ConnState::Handshake,
                                }),
                            );
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            backoff = BACKOFF_MIN;
                            break;
                        }
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(_) => {
                            // Transient (EMFILE/ECONNABORTED): never
                            // exit — the listener dies with this
                            // thread. Back off and re-enter the epoll
                            // wait; shutdown still interrupts via the
                            // eventfd after at most one backoff window.
                            inner.accept_retries.fetch_add(1, Ordering::Relaxed);
                            std::thread::sleep(backoff);
                            backoff = (backoff * 2).min(BACKOFF_MAX);
                            break;
                        }
                    }
                }
            }
        })?;
        Ok(())
    }

    /// The bound address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// Statistics snapshot of the only context (single-context
    /// deployments): shard totals merged with the fast-path counters.
    ///
    /// # Panics
    /// Panics if the daemon serves more than one context — use
    /// [`context_stats`](Self::context_stats) then.
    pub fn stats(&self) -> DvStats {
        assert_eq!(
            self.inner.contexts.len(),
            1,
            "multi-context daemon: use context_stats(name)"
        );
        let runtime = self.inner.contexts.values().next().expect("one context");
        runtime.stats_snapshot()
    }

    /// Statistics snapshot of a named context.
    pub fn context_stats(&self, name: &str) -> Option<DvStats> {
        self.inner.contexts.get(name).map(|rt| rt.stats_snapshot())
    }

    /// Observability probe: is `key` currently fast-pinned in
    /// `context`'s lock-free hit index? `None` when the context is
    /// unknown. Used by the disconnect leak tests — a pin that
    /// survives its owning connection would veto eviction forever.
    pub fn fast_pinned(&self, context: &str, key: u64) -> Option<bool> {
        let runtime = self.inner.contexts.get(context)?;
        Some(runtime.fast.is_pinned(key))
    }

    /// The names of the contexts served.
    pub fn context_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.contexts.keys().cloned().collect();
        names.sort();
        names
    }

    /// Stops accepting connections.
    pub fn shutdown(&self) {
        // Quiesce before stopping the machinery: in-flight
        // re-simulations keep producing files until they report
        // SimFinished, and the reaper (which must keep running here —
        // it is how a *crashed* sim's exit reaches the DV) drains
        // orphans. A bounded wait lets callers tear down the storage
        // area without racing live writers. The wait is event-driven:
        // `commit` notifies the quiesce condvar as sims retire (the
        // short timeout only backstops a wakeup lost to the unguarded
        // DV-state read).
        let deadline = Instant::now() + Duration::from_secs(5);
        let (qlock, qcv) = &self.inner.quiesce;
        for ctx in self.inner.contexts.values() {
            let _rank = lockrank::held(lockrank::QUIESCE);
            let mut guard = qlock.lock().unwrap();
            loop {
                let idle = ctx.shards.iter().all(|shard| {
                    let _shard_rank = lockrank::held(lockrank::DV_SHARD);
                    let core = shard.lock();
                    core.dv.active_sims() == 0 && core.dv.queued_launches() == 0
                });
                if idle {
                    break;
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let wait = (deadline - now).min(Duration::from_millis(100));
                guard = qcv.wait_timeout(guard, wait).unwrap().0;
            }
        }
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.accept_wake.signal();
        self.inner.reactor.shutdown();
        // Drain the effect tier: queued effects (WAL appends, pending
        // replies, evictions) execute before the helpers join — the
        // tier never drops work it accepted.
        if let Some(pool) = self.inner.pool.get() {
            pool.shutdown();
        }
        // Release the reaper from its idle park.
        {
            let _rank = lockrank::held(lockrank::REAP_SIGNAL);
            let mut stop = self.inner.reap_signal.0.lock().unwrap();
            *stop = true;
        }
        self.inner.reap_signal.1.notify_all();
    }
}

impl Drop for DvServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn run_reaper(inner: &Arc<Inner>) {
    let mut fx = Effects::default();
    loop {
        // Park until jobs are in flight (or shutdown). Zero wakeups,
        // zero syscalls while the daemon is idle — except while
        // recovery leases await re-assertion (50 ms timed wait) or
        // supervision work is scheduled (a backed-off retry, a hang
        // deadline, a quarantine expiry), when the park becomes a timed
        // wait until the earliest deadline. Transitions that create
        // supervision work notify the condvar, so a long wait re-arms
        // against any newly earlier deadline.
        {
            let _rank = lockrank::held(lockrank::REAP_SIGNAL);
            let mut stop = inner.reap_signal.0.lock().unwrap();
            loop {
                if *stop {
                    return;
                }
                let busy = inner.contexts.values().any(|rt| {
                    let _ledger_rank = lockrank::held(lockrank::LEDGER);
                    rt.ledger.lock().jobs_in_flight()
                });
                if busy {
                    break;
                }
                let now = inner.now();
                if let Some(due) = inner
                    .contexts
                    .values()
                    .filter_map(|rt| rt.supervision_due(now))
                    .min()
                {
                    let wait = Duration::from_nanos(due.saturating_since(now).as_nanos())
                        .max(Duration::from_millis(1));
                    let (guard, _) = inner.reap_signal.1.wait_timeout(stop, wait).unwrap();
                    stop = guard;
                    if *stop {
                        return;
                    }
                    break;
                }
                if inner.contexts.values().any(|rt| rt.has_leases()) {
                    let (guard, _) = inner
                        .reap_signal
                        .1
                        .wait_timeout(stop, Duration::from_millis(50))
                        .unwrap();
                    stop = guard;
                    if *stop {
                        return;
                    }
                    break;
                }
                stop = inner.reap_signal.1.wait(stop).unwrap();
            }
        }
        // Poll pass: translate orphaned exits into DV events, expire
        // recovery leases whose client never returned, and run the
        // supervision tick (hang watchdog, due retries, quarantine
        // sweeps).
        for runtime in inner.contexts.values() {
            runtime.expire_leases(inner, &mut fx);
            runtime.reap_exits(inner, &mut fx);
            runtime.supervise(inner, &mut fx);
        }
        // Re-poll cadence while jobs run; shutdown interrupts the wait.
        {
            let _rank = lockrank::held(lockrank::REAP_SIGNAL);
            let stop = inner.reap_signal.0.lock().unwrap();
            if *stop {
                return;
            }
            let _ = inner
                .reap_signal
                .1
                .wait_timeout(stop, Duration::from_millis(50))
                .unwrap();
        }
    }
}

/// Per-connection state machine of the reactor front-end. The handshake
/// frame routes the connection to a context and a role; afterwards each
/// frame is dispatched through the shared request handlers.
struct EpollConn {
    inner: Arc<Inner>,
    state: ConnState,
}

enum ConnState {
    /// Awaiting the Hello frame.
    Handshake,
    Analysis {
        runtime: Arc<CtxRuntime>,
        client: ClientId,
        local: ConnLocal,
        fx: Effects,
    },
    Simulator {
        runtime: Arc<CtxRuntime>,
        sim: SimId,
        finished: bool,
        fx: Effects,
    },
    /// Torn down; any further frame closes the connection.
    Done,
}

/// Encodes one response as a complete wire frame for a direct
/// connection write (handshake replies that precede registration).
fn direct_frame(cx: &mut ConnCtx<'_>, resp: &Response) {
    let mut batch = FrameBatch::new();
    batch.push_response(resp);
    cx.write(batch.as_bytes());
}

impl crate::reactor::Handler for EpollConn {
    fn on_frame(&mut self, frame: &[u8], cx: &mut ConnCtx<'_>) -> bool {
        match &mut self.state {
            ConnState::Handshake => {
                let Ok(req) = Request::decode(frame) else {
                    return false;
                };
                let Request::Hello {
                    kind,
                    context,
                    membership,
                    epoch: prior_epoch,
                } = req
                else {
                    direct_frame(
                        cx,
                        &Response::Error {
                            message: "expected Hello".to_string(),
                        },
                    );
                    return false;
                };
                let Some(runtime) = self.inner.route(&context).cloned() else {
                    direct_frame(cx, &unknown_context_error(&self.inner, &context));
                    return false;
                };
                // Membership handshake: a client whose member map or
                // step math disagrees with this daemon would misroute
                // every interval — reject it here, descriptively,
                // instead of failing key-by-key later (or worse,
                // silently accepting a stream hashed with different
                // cadences). `None` (solo tools, simulators) skips the
                // check: they route nothing.
                if let Some(m) = membership {
                    let want_hash = runtime.steps.config_hash();
                    if m.index != runtime.cluster.index
                        || m.size != runtime.cluster.size
                        || m.steps_hash != want_hash
                    {
                        direct_frame(
                            cx,
                            &Response::Error {
                                message: format!(
                                    "cluster membership mismatch: client expects member \
                                     {} of {} with steps hash {:#018x}, daemon is member \
                                     {} of {} with steps hash {:#018x}",
                                    m.index,
                                    m.size,
                                    m.steps_hash,
                                    runtime.cluster.index,
                                    runtime.cluster.size,
                                    want_hash
                                ),
                            },
                        );
                        return false;
                    }
                }
                match kind {
                    ClientKind::Analysis => {
                        // A hello carrying a prior-epoch claim is a
                        // reconnecting session (it will follow up with
                        // a Reassert).
                        if prior_epoch.is_some() {
                            runtime.client_reconnects.fetch_add(1, Ordering::Relaxed);
                        }
                        let client = self.inner.next_client.fetch_add(1, Ordering::SeqCst);
                        // Route first, then greet: a notification can
                        // only exist after a request, which can only
                        // follow the HelloOk already in the buffer.
                        cx.register(client);
                        direct_frame(
                            cx,
                            &Response::HelloOk {
                                client_id: client,
                                epoch: runtime.epoch,
                            },
                        );
                        let mut local = ConnLocal::new();
                        // Clustered sessions see only the keys routed
                        // here; their full stream arrives as forwarded
                        // AccessDigest frames instead of local records.
                        local.observe_local = membership.is_none_or(|m| m.size <= 1);
                        self.state = ConnState::Analysis {
                            runtime,
                            client,
                            local,
                            fx: Effects::default(),
                        };
                    }
                    ClientKind::Simulator { sim_id } => {
                        // Simulators receive no post-handshake traffic;
                        // they are not registered for routing.
                        direct_frame(
                            cx,
                            &Response::HelloOk {
                                client_id: sim_id,
                                epoch: runtime.epoch,
                            },
                        );
                        self.state = ConnState::Simulator {
                            runtime,
                            sim: sim_id,
                            finished: false,
                            fx: Effects::default(),
                        };
                    }
                }
                true
            }
            ConnState::Analysis {
                runtime,
                client,
                local,
                fx,
            } => {
                let Ok(req) = Request::decode(frame) else {
                    return false;
                };
                let keep = runtime.handle_analysis_request(&self.inner, *client, req, local, cx, fx);
                // Tier 1b: the frame's fast-path pin window becomes
                // durable once the replies are staged (slow-path pins
                // were logged before their sends, inside commit) — via
                // the effect tier's group-fsync pass when active.
                if keep {
                    runtime.wal_drain_local(&self.inner, local, fx);
                }
                keep
            }
            ConnState::Simulator {
                runtime,
                sim,
                finished,
                fx,
            } => {
                let Ok(req) = Request::decode(frame) else {
                    return false;
                };
                runtime.handle_simulator_request(&self.inner, *sim, req, finished, fx)
            }
            ConnState::Done => false,
        }
    }

    fn wants_tick(&self) -> bool {
        // A prefetching context's pure-hit connection never takes a DV
        // lock, so its recorded accesses would otherwise sit in the log
        // forever: ask the reactor for ticks while records wait.
        match &self.state {
            ConnState::Analysis { runtime, local, .. } => {
                runtime.digest && !local.log.is_empty()
            }
            _ => false,
        }
    }

    fn on_tick(&mut self, _cx: &mut ConnCtx<'_>) {
        if let ConnState::Analysis {
            runtime,
            local,
            fx,
            ..
        } = &mut self.state
        {
            if runtime.digest && !local.log.is_empty() {
                runtime.drain_digest(&self.inner, local, fx);
                runtime.commit(&self.inner, fx);
            }
        }
    }

    fn on_close(&mut self) {
        match std::mem::replace(&mut self.state, ConnState::Done) {
            ConnState::Handshake | ConnState::Done => {}
            ConnState::Analysis {
                runtime,
                client,
                mut local,
                mut fx,
            } => runtime.analysis_disconnect(&self.inner, client, &mut local, &mut fx),
            ConnState::Simulator {
                runtime,
                sim,
                finished,
                mut fx,
            } => runtime.simulator_disconnect(&self.inner, sim, finished, &mut fx),
        }
    }
}

fn unknown_context_error(inner: &Inner, context: &str) -> Response {
    Response::Error {
        message: format!("unknown simulation context {:?} (available: {:?})", context, {
            let mut names: Vec<&String> = inner.contexts.keys().collect();
            names.sort();
            names
        }),
    }
}

/// Deterministic fault injection for [`ThreadSimLauncher`]: exercises
/// the daemon's supervision tier (retry, integrity gate) end to end in
/// tests and `bench_daemon --sim-faults`. Both knobs are once-only: a
/// retried production succeeds, so faults are transient by
/// construction.
#[derive(Clone, Copy, Debug, Default)]
pub struct SimFaultSpec {
    /// The first this-many sims to launch each crash once (disconnect
    /// after `SimStarted`, producing nothing). Retries are fresh sim
    /// ids, so they run clean once the quota is spent; a quota at or
    /// above `attempt_budget` therefore drives an interval to poison.
    pub crash_quota: u64,
    /// When non-zero, each key divisible by this is first published as
    /// a truncated SDF container (magic but no valid body), tripping
    /// the daemon's output-integrity gate.
    pub corrupt_every: u64,
    /// Synchronous latency of each `launch()` call itself (the cost a
    /// real scheduler submission or `fork` would charge the calling
    /// thread). The head-of-line regression tests use it to make an
    /// inline-executed launch visibly stall its reactor shard.
    pub launch_delay: std::time::Duration,
}

/// In-process simulator launcher: "launches" jobs as threads that
/// connect back to the daemon like a real simulator process would. Used
/// by tests and the virtual examples; production deployments use
/// [`simbatch::ProcessLauncher`] with the `simfs-simd` binary.
pub struct ThreadSimLauncher {
    /// Generates the bytes of output step `key`.
    make_bytes: Arc<dyn Fn(u64) -> Vec<u8> + Send + Sync>,
    /// Maps a key to its published filename (must agree with the
    /// context's driver).
    name_of: Arc<dyn Fn(u64) -> String + Send + Sync>,
    /// Wall-clock production delay per step (simulates `tau_sim`).
    step_delay: std::time::Duration,
    /// Restart latency before the first step (simulates `alpha_sim`).
    restart_delay: std::time::Duration,
    kill_flags: Mutex<HashMap<JobId, Arc<AtomicBool>>>,
    faults: SimFaultSpec,
    /// Sim ids that already crashed (each id fails at most once).
    crashed_sims: Arc<Mutex<HashSet<u64>>>,
    /// Keys already published corrupt (each key corrupts at most once).
    corrupted_keys: Arc<Mutex<HashSet<u64>>>,
}

impl ThreadSimLauncher {
    /// A launcher producing steps via `make_bytes` with the given
    /// latencies, publishing them under `name_of(key)`.
    pub fn new(
        make_bytes: impl Fn(u64) -> Vec<u8> + Send + Sync + 'static,
        name_of: impl Fn(u64) -> String + Send + Sync + 'static,
        restart_delay: std::time::Duration,
        step_delay: std::time::Duration,
    ) -> ThreadSimLauncher {
        ThreadSimLauncher {
            make_bytes: Arc::new(make_bytes),
            name_of: Arc::new(name_of),
            step_delay,
            restart_delay,
            kill_flags: Mutex::new(HashMap::new()),
            faults: SimFaultSpec::default(),
            crashed_sims: Arc::new(Mutex::new(HashSet::new())),
            corrupted_keys: Arc::new(Mutex::new(HashSet::new())),
        }
    }

    /// Builder: inject deterministic transient faults.
    pub fn with_faults(mut self, faults: SimFaultSpec) -> Self {
        self.faults = faults;
        self
    }

    fn parse_arg(spec: &SpawnSpec, flag: &str) -> Option<u64> {
        let pos = spec.args.iter().position(|a| a == flag)?;
        spec.args.get(pos + 1)?.parse().ok()
    }

    fn env_of<'a>(spec: &'a SpawnSpec, key: &str) -> Option<&'a str> {
        spec.env
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

impl JobLauncher for ThreadSimLauncher {
    fn launch(&self, job: JobId, spec: &SpawnSpec) -> io::Result<simbatch::JobHandle> {
        if !self.faults.launch_delay.is_zero() {
            // Charge the submission cost to the calling thread, like a
            // real scheduler hand-off would.
            std::thread::sleep(self.faults.launch_delay);
        }
        let start = Self::parse_arg(spec, "--start-key")
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "missing --start-key"))?;
        let stop = Self::parse_arg(spec, "--stop-key")
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "missing --stop-key"))?;
        let addr = Self::env_of(spec, env_keys::DV_ADDR)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "missing DV addr"))?
            .to_string();
        let sim_id: u64 = Self::env_of(spec, env_keys::SIM_ID)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "missing sim id"))?;
        let context = Self::env_of(spec, env_keys::CONTEXT).unwrap_or("").to_string();
        let data_dir = Self::env_of(spec, env_keys::DATA_DIR)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "missing data dir"))?
            .to_string();

        let killed = Arc::new(AtomicBool::new(false));
        self.kill_flags.lock().insert(job, Arc::clone(&killed));
        let make_bytes = Arc::clone(&self.make_bytes);
        let name_of = Arc::clone(&self.name_of);
        let (restart_delay, step_delay) = (self.restart_delay, self.step_delay);
        let faults = self.faults;
        let crash_this_sim = faults.crash_quota != 0 && {
            let mut crashed = self.crashed_sims.lock();
            (crashed.len() as u64) < faults.crash_quota && crashed.insert(sim_id)
        };
        let corrupted_keys = Arc::clone(&self.corrupted_keys);

        std::thread::spawn(move || {
            let run = || -> io::Result<()> {
                let mut stream = TcpStream::connect(&addr)?;
                wire::write_frame(
                    &mut stream,
                    &Request::Hello {
                        kind: ClientKind::Simulator { sim_id },
                        context,
                        membership: None,
                        epoch: None,
                    }
                    .encode(),
                )?;
                let _ = wire::read_frame(&mut stream)?; // HelloOk
                std::thread::sleep(restart_delay);
                wire::write_frame(&mut stream, &Request::SimStarted.encode())?;
                if crash_this_sim {
                    // Injected transient crash: disconnect without
                    // SimFinished, producing nothing. The daemon maps
                    // the hangup to SimFailed and the supervision tier
                    // retries with a fresh sim.
                    return Ok(());
                }
                let area = StorageArea::create(&data_dir, u64::MAX)?;
                for key in start..=stop {
                    if killed.load(Ordering::SeqCst) {
                        // Killed: vanish without SimFinished; the server
                        // treats the drop as SimFailed — unless the DV
                        // already removed the sim (the normal kill path).
                        return Ok(());
                    }
                    std::thread::sleep(step_delay);
                    let corrupt = faults.corrupt_every != 0
                        && key % faults.corrupt_every == 0
                        && corrupted_keys.lock().insert(key);
                    let bytes = if corrupt {
                        // SDF magic with a truncated body: fails the
                        // daemon's structural verification.
                        b"SDF1".to_vec()
                    } else {
                        make_bytes(key)
                    };
                    let size = area.publish(&name_of(key), &bytes)?;
                    wire::write_frame(&mut stream, &Request::FileProduced { key, size }.encode())?;
                }
                wire::write_frame(&mut stream, &Request::SimFinished.encode())?;
                Ok(())
            };
            let _ = run();
        });
        Ok(simbatch::JobHandle { job, pid: 0 })
    }

    fn kill(&self, job: JobId) -> io::Result<()> {
        if let Some(flag) = self.kill_flags.lock().remove(&job) {
            flag.store(true, Ordering::SeqCst);
        }
        Ok(())
    }

    fn reap(&self) -> Vec<(JobId, bool)> {
        Vec::new()
    }
}
