//! String strategies from `[class]{m,n}` patterns.
//!
//! Real proptest accepts arbitrary regexes as string strategies; every
//! pattern in this workspace is a single character class with a bounded
//! repetition (`"[a-z0-9-]{0,24}"`, `"[ -~]{0,40}"`, …), so only that
//! shape is implemented. Unsupported patterns panic loudly rather than
//! silently generating the wrong language.

use crate::strategy::{Reject, Strategy};
use crate::test_runner::TestRng;
use rand::Rng;

fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class = &rest[..close];
    let rep = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;

    let mut chars: Vec<char> = Vec::new();
    let raw: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < raw.len() {
        if i + 2 < raw.len() && raw[i + 1] == '-' {
            let (lo, hi) = (raw[i], raw[i + 2]);
            if lo > hi {
                return None;
            }
            for c in lo..=hi {
                chars.push(c);
            }
            i += 3;
        } else {
            chars.push(raw[i]);
            i += 1;
        }
    }
    if chars.is_empty() {
        return None;
    }

    let (lo, hi) = match rep.split_once(',') {
        Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
        None => {
            let n = rep.trim().parse().ok()?;
            (n, n)
        }
    };
    if lo > hi {
        return None;
    }
    Some((chars, lo, hi))
}

/// A `&str` used as a strategy generates strings matching the pattern.
impl Strategy for &str {
    type Value = String;

    fn gen_value(&self, rng: &mut TestRng) -> Result<String, Reject> {
        let (chars, lo, hi) = parse_class_pattern(self).unwrap_or_else(|| {
            panic!(
                "vendored proptest supports only `[class]{{m,n}}` string \
                 patterns, got {self:?}"
            )
        });
        let len = rng.gen_range(lo..=hi);
        Ok((0..len)
            .map(|_| chars[rng.gen_range(0..chars.len())])
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn class_patterns_parse() {
        let (chars, lo, hi) = parse_class_pattern("[a-z0-9-]{0,24}").unwrap();
        assert!(chars.contains(&'a') && chars.contains(&'9') && chars.contains(&'-'));
        assert_eq!((lo, hi), (0, 24));
        let (chars, lo, hi) = parse_class_pattern("[ -~]{1,8}").unwrap();
        assert_eq!(chars.len(), 95); // all printable ASCII
        assert_eq!((lo, hi), (1, 8));
        let (_, lo, hi) = parse_class_pattern("[ab]{3}").unwrap();
        assert_eq!((lo, hi), (3, 3));
        assert!(parse_class_pattern("plain").is_none());
    }

    #[test]
    fn generated_strings_match_class_and_length() {
        let mut rng = TestRng::seed_from_u64(5);
        for _ in 0..200 {
            let s = "[a-c]{2,5}".gen_value(&mut rng).unwrap();
            assert!(s.len() >= 2 && s.len() <= 5);
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }
}
