//! Offline drop-in subset of the `rand` crate.
//!
//! Provides the exact API surface this workspace uses — `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen`] / [`Rng::gen_range`]
//! over integer and float ranges. The generator is xoshiro256++ seeded
//! through SplitMix64, the same construction the real `rand`'s
//! `seed_from_u64` uses: deterministic per seed, statistically solid for
//! simulation workloads, and fast. Not cryptographically secure — no
//! caller here needs that. See `vendor/README.md` for why dependencies
//! are vendored.

use std::ops::{Range, RangeInclusive};

/// Core generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's standard generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; SplitMix64 never
            // yields four zeros from one stream, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Types [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges [`Rng::gen_range`] accepts. The output type is an associated
/// type (not a trait parameter) so integer-literal ranges infer cleanly
/// from the use site.
pub trait SampleRange {
    /// The element type drawn from the range.
    type Output;

    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Unbiased integer sampling in `[0, bound)` via Lemire-style rejection.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;

            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_below(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }

        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;

            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = uniform_below(rng, span + 1);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;

    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::draw(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;

    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f32::draw(rng);
        self.start + u * (self.end - self.start)
    }
}

/// High-level drawing interface, blanket-implemented over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws uniformly from a range.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_single(self)
    }

    /// Draws a bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w: i64 = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = r.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let one: usize = r.gen_range(3usize..4);
            assert_eq!(one, 3);
        }
    }

    #[test]
    fn uniform_below_covers_all_residues() {
        let mut r = StdRng::seed_from_u64(1);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[uniform_below(&mut r, 7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_floats_have_plausible_mean() {
        let mut r = StdRng::seed_from_u64(9);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| f64::draw(&mut r)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
