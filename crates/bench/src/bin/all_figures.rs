//! Runs every table/figure harness at reduced scale and writes all
//! CSVs — the one-command reproduction entry point.
//!
//! `cargo run --release -p simfs-bench --bin all_figures [--full]`

use simfs_bench::prefetchfigs::{latency, latency_table, scaling, scaling_table, ScalingConfig};
use simfs_bench::{costfigs, fig5, RunOpts};

fn main() {
    let opts = RunOpts::from_args();
    let out = &opts.out_dir;

    println!("SimFS paper reproduction — all tables and figures");
    println!(
        "(reps = {}, seed = {}, out = {}; pass --full for paper scale)",
        opts.reps,
        opts.seed,
        out.display()
    );

    // Fig. 5.
    let cfg5 = fig5::Fig5Config::paper(opts.full);
    let cells = fig5::run(&cfg5, &opts);
    let t = fig5::table(&cells);
    t.print();
    t.write_csv(out, "fig05_replacement").expect("csv");

    // Cost figures.
    let (t, _) = costfigs::fig1(&opts);
    t.print();
    t.write_csv(out, "fig01_cost_availability").expect("csv");
    let (t, _) = costfigs::fig12(&opts);
    t.print();
    t.write_csv(out, "fig12_cost_dr_sweep").expect("csv");
    let (t, _) = costfigs::fig13(&opts);
    t.print();
    t.write_csv(out, "fig13_cost_overlap").expect("csv");
    let (t, _) = costfigs::fig14(&opts);
    t.print();
    t.write_csv(out, "fig14_cost_nanalyses").expect("csv");
    let t = costfigs::fig15a(&opts, if opts.full { 16 } else { 6 });
    t.print();
    t.write_csv(out, "fig15a_heatmap").expect("csv");
    let (t, _) = costfigs::fig15bc(&opts);
    t.print();
    t.write_csv(out, "fig15bc_space").expect("csv");

    // Timing figures.
    let cosmo = ScalingConfig::cosmo();
    let points = scaling(&cosmo, &opts);
    let t = scaling_table(&cosmo, &points);
    t.print();
    t.write_csv(out, "fig16_cosmo_scaling").expect("csv");

    let flash = ScalingConfig::flash();
    let points = scaling(&flash, &opts);
    let t = scaling_table(&flash, &points);
    t.print();
    t.write_csv(out, "fig18_flash_scaling").expect("csv");

    let alphas: &[u64] = if opts.full {
        &[0, 50, 100, 200, 300, 400, 500, 600]
    } else {
        &[0, 300, 600]
    };
    let points = latency(&cosmo, &[72, 288], alphas, &opts);
    let t = latency_table(&cosmo, &points);
    t.print();
    t.write_csv(out, "fig17_cosmo_latency").expect("csv");

    let points = latency(&flash, &[200, 400], alphas, &opts);
    let t = latency_table(&flash, &points);
    t.print();
    t.write_csv(out, "fig19_flash_latency").expect("csv");

    println!("\nall figures written to {}", out.display());
}
