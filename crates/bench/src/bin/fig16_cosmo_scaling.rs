//! Fig. 16: strong scalability of analyses on virtualized COSMO data.
//!
//! `cargo run -p simfs-bench --bin fig16_cosmo_scaling`

use simfs_bench::prefetchfigs::{scaling, scaling_table, ScalingConfig};
use simfs_bench::RunOpts;

fn main() {
    let opts = RunOpts::from_args();
    let cfg = ScalingConfig::cosmo();
    let points = scaling(&cfg, &opts);
    let table = scaling_table(&cfg, &points);
    table.print();
    let path = table
        .write_csv(&opts.out_dir, "fig16_cosmo_scaling")
        .expect("write CSV");
    println!("\nCSV: {}", path.display());
}
