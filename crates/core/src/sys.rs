//! Raw Linux syscall bindings for the epoll reactor ([`crate::reactor`]).
//!
//! Hand-declared `extern "C"` prototypes against the libc `std` already
//! links — no external crate, consistent with the vendored-offline
//! dependency policy (see `vendor/README.md`). Only what the reactor
//! needs is bound: epoll instances, eventfd wakeup counters, and raw-fd
//! `read`/`write`/`close` for the eventfds.

use std::io;
use std::os::raw::{c_int, c_uint, c_void};
use std::os::unix::io::RawFd;

/// Readable (or a peer hangup pending in the read queue).
pub const EPOLLIN: u32 = 0x001;
/// Writable without blocking.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition on the fd (always reported; no need to register).
pub const EPOLLERR: u32 = 0x008;
/// Hangup (always reported; no need to register).
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its write half (must be registered to be reported).
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;
const EFD_SEMAPHORE: c_int = 1;

/// `struct epoll_event`. The kernel UAPI packs it on x86-64 (the 64-bit
/// data field is misaligned by design, a compatibility quirk inherited
/// from the 32-bit ABI); other architectures use natural alignment.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy, Debug, Default)]
pub struct EpollEvent {
    /// Ready-event mask (`EPOLLIN` | ...).
    pub events: u32,
    /// Caller-chosen token identifying the registered fd.
    pub data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int)
        -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An epoll instance; the fd is closed on drop.
#[derive(Debug)]
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates a close-on-exec epoll instance.
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: no pointers cross the boundary; the flags value is a
        // valid epoll_create1 argument and the return is error-checked.
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, data: token };
        // SAFETY: `ev` is a live, properly laid-out (repr(C)) stack
        // value for the duration of the call; the kernel only reads it.
        cvt(unsafe { epoll_ctl(self.fd, op, fd, &mut ev) }).map(|_| ())
    }

    /// Registers `fd` for `events`, reported with `token`.
    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Changes the registered interest set of `fd`.
    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Deregisters `fd` (harmless if already closed).
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Waits for events; `timeout_ms < 0` blocks indefinitely. Returns
    /// the number of filled entries; an interrupting signal returns
    /// `Ok(0)` so callers just re-loop.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        // SAFETY: the events pointer and clamped length describe the
        // caller's live slice; the kernel writes at most that many
        // entries, each a plain-old-data EpollEvent.
        let n = unsafe {
            epoll_wait(
                self.fd,
                events.as_mut_ptr(),
                events.len().min(c_int::MAX as usize) as c_int,
                timeout_ms,
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(n as usize)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: `self.fd` is the epoll fd this struct owns
        // exclusively; it is closed exactly once, here.
        unsafe {
            close(self.fd);
        }
    }
}

/// A non-blocking eventfd wakeup counter; the fd is closed on drop.
///
/// `signal` is async-safe from any thread; `drain` resets the counter
/// from the owning event loop. A saturated counter (`EAGAIN` on write)
/// means a wakeup is already pending, which is exactly what the caller
/// wanted — both directions treat `WouldBlock` as success.
#[derive(Debug)]
pub struct EventFd {
    fd: RawFd,
}

impl EventFd {
    /// Creates a non-blocking, close-on-exec eventfd.
    pub fn new() -> io::Result<EventFd> {
        // SAFETY: no pointers cross the boundary; the flags value is a
        // valid eventfd argument and the return is error-checked.
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(EventFd { fd })
    }

    /// The raw fd, for epoll registration.
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Increments the counter, waking any epoll waiting on it.
    pub fn signal(&self) {
        let one: u64 = 1;
        // SAFETY: the buffer is a live 8-byte stack value matching the
        // count; eventfd writes never retain the pointer. WouldBlock
        // (saturated counter) is success — a wakeup is already pending.
        unsafe {
            write(self.fd, (&one as *const u64).cast::<c_void>(), 8);
        }
    }

    /// Resets the counter (returns silently if it was already zero).
    pub fn drain(&self) {
        let mut buf: u64 = 0;
        // SAFETY: the buffer is a live, writable 8-byte stack value
        // matching the count; eventfd reads fill exactly 8 bytes or
        // fail with WouldBlock (counter already zero), which is fine.
        unsafe {
            read(self.fd, (&mut buf as *mut u64).cast::<c_void>(), 8);
        }
    }
}

/// A *blocking*, semaphore-mode eventfd: a counting wakeup primitive for
/// the effect-pool helper threads ([`crate::effectpool`]).
///
/// Each [`post`](Self::post) adds one permit; each
/// [`acquire`](Self::acquire) blocks until a permit is available and
/// consumes exactly one (`EFD_SEMAPHORE` read semantics — the counter
/// decrements by 1 instead of resetting to 0). Unlike [`EventFd`], the
/// fd is intentionally left blocking: helpers park *in* the read, and a
/// post from any submitting thread wakes exactly one of them.
#[derive(Debug)]
pub struct SemaphoreFd {
    fd: RawFd,
}

impl SemaphoreFd {
    /// Creates a blocking, close-on-exec, semaphore-mode eventfd with
    /// zero initial permits.
    pub fn new() -> io::Result<SemaphoreFd> {
        // SAFETY: no pointers cross the boundary; the flags value is a
        // valid eventfd argument and the return is error-checked.
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_SEMAPHORE) })?;
        Ok(SemaphoreFd { fd })
    }

    /// Adds `n` permits, waking up to `n` parked acquirers.
    pub fn post(&self, n: u64) {
        // SAFETY: the buffer is a live 8-byte stack value matching the
        // count; eventfd writes never retain the pointer. The counter
        // would have to reach u64::MAX - 1 to block, which a bounded
        // queue cannot produce.
        unsafe {
            write(self.fd, (&n as *const u64).cast::<c_void>(), 8);
        }
    }

    /// Blocks until a permit is available and consumes one. Returns
    /// `false` only on read error (fd closed mid-shutdown), `true` on a
    /// consumed permit; an interrupting signal retries internally.
    pub fn acquire(&self) -> bool {
        let mut buf: u64 = 0;
        loop {
            // SAFETY: the buffer is a live, writable 8-byte stack value
            // matching the count; a semaphore-mode eventfd read fills
            // exactly 8 bytes (decrementing the counter by one) or
            // fails, and never retains the pointer.
            let n = unsafe { read(self.fd, (&mut buf as *mut u64).cast::<c_void>(), 8) };
            if n == 8 {
                return true;
            }
            if io::Error::last_os_error().kind() == io::ErrorKind::Interrupted {
                continue;
            }
            return false;
        }
    }
}

impl Drop for SemaphoreFd {
    fn drop(&mut self) {
        // SAFETY: `self.fd` is the eventfd this struct owns
        // exclusively; it is closed exactly once, here.
        unsafe {
            close(self.fd);
        }
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        // SAFETY: `self.fd` is the eventfd this struct owns
        // exclusively; it is closed exactly once, here.
        unsafe {
            close(self.fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eventfd_signals_epoll() {
        let ep = Epoll::new().unwrap();
        let ev = EventFd::new().unwrap();
        ep.add(ev.fd(), EPOLLIN, 7).unwrap();
        let mut events = [EpollEvent::default(); 4];
        // Nothing pending: a zero-timeout wait returns no events.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
        ev.signal();
        ev.signal(); // coalesces into the same counter
        assert_eq!(ep.wait(&mut events, 1000).unwrap(), 1);
        let (mask, token) = (events[0].events, events[0].data);
        assert_eq!(token, 7);
        assert_ne!(mask & EPOLLIN, 0);
        ev.drain();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn semaphore_fd_hands_out_one_permit_per_acquire() {
        let sem = std::sync::Arc::new(SemaphoreFd::new().unwrap());
        sem.post(2);
        assert!(sem.acquire());
        assert!(sem.acquire());
        // Counter is back to zero: a third acquire parks until a
        // concurrent post arrives.
        let waiter = {
            let sem = sem.clone();
            std::thread::spawn(move || sem.acquire())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        sem.post(1);
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn modify_and_delete_roundtrip() {
        let ep = Epoll::new().unwrap();
        let ev = EventFd::new().unwrap();
        ep.add(ev.fd(), EPOLLIN, 1).unwrap();
        ep.modify(ev.fd(), EPOLLIN | EPOLLOUT, 2).unwrap();
        ep.delete(ev.fd()).unwrap();
        // Deleted: a signal no longer surfaces.
        ev.signal();
        let mut events = [EpollEvent::default(); 4];
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
    }
}
