//! Offline no-op `Serialize`/`Deserialize` derive macros.
//!
//! The vendored `serde` stub blanket-implements its marker traits for
//! every type (nothing in this workspace actually serializes through
//! serde — the derives exist so the type definitions keep their
//! upstream-compatible annotations). The derive macros therefore have
//! nothing to generate and expand to an empty token stream.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`: the trait is blanket-implemented. The
/// `serde` helper attribute is registered so upstream-style field
/// annotations (`#[serde(default)]`, ...) parse; they are ignored.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`: the trait is blanket-implemented.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
