//! # simulators — restartable simulation substrates
//!
//! SimFS only ever observes a simulator through a narrow interface: it
//! proceeds forward in time, emits an *output step* every `Δd` timesteps
//! and a *restart step* every `Δr` timesteps, can be restarted from any
//! restart step, and — for `SIMFS_Bitrep` — reproduces bitwise-identical
//! output when re-run from the same restart (§II).
//!
//! The paper evaluates with COSMO (climate) and FLASH (astrophysics),
//! neither of which is runnable here; this crate provides three
//! substrates that exercise the same contract (substitutions documented
//! in DESIGN.md §3):
//!
//! * [`SyntheticSim`] — the paper's own methodology for Figs. 17/19
//!   ("we use a synthetic simulator that can be configured to produce
//!   output steps at a given rate and after a given restart latency");
//!   state is a deterministic counter-derived field.
//! * [`Heat2d`] — a 2-D advection–diffusion stencil code standing in for
//!   COSMO: a real explicit PDE integrator with full-state checkpoints.
//! * [`Sedov`] — a 2-D finite-volume compressible-Euler solver (Rusanov
//!   fluxes) evolving a Sedov blast wave, standing in for the paper's
//!   FLASH/Sedov experiment (§VI).
//!
//! All three are strictly sequential f64 arithmetic: re-running a
//! segment from the same checkpoint is bitwise reproducible by
//! construction, which the test suites assert byte-for-byte.

pub mod heat2d;
pub mod sedov;
pub mod synthetic;

pub use heat2d::Heat2d;
pub use sedov::Sedov;
pub use synthetic::SyntheticSim;

use simstore::{Dataset, SdfError};
use std::fmt;

/// Errors raised by simulator construction and restart loading.
#[derive(Debug)]
pub enum SimError {
    /// Restart dataset does not belong to this simulator/configuration.
    RestartMismatch(String),
    /// Restart dataset is structurally broken.
    BadRestart(SdfError),
    /// Invalid construction parameters.
    BadConfig(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::RestartMismatch(msg) => write!(f, "restart mismatch: {msg}"),
            SimError::BadRestart(e) => write!(f, "bad restart file: {e}"),
            SimError::BadConfig(msg) => write!(f, "bad simulator config: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<SdfError> for SimError {
    fn from(e: SdfError) -> Self {
        SimError::BadRestart(e)
    }
}

/// The contract SimFS requires from a simulator (§II-A).
pub trait RestartableSim {
    /// Simulator name, used in file naming and restart validation.
    fn name(&self) -> &'static str;

    /// Advances the simulation by one timestep.
    fn step(&mut self);

    /// Current timestep index (0 before the first [`step`](Self::step),
    /// unless restarted).
    fn timestep(&self) -> u64;

    /// Serializes the *complete* state into a restart dataset: loading
    /// it must make a fresh simulator bitwise-identical to this one.
    fn save_restart(&self) -> Dataset;

    /// Restores the complete state from a restart dataset.
    fn load_restart(&mut self, ds: &Dataset) -> Result<(), SimError>;

    /// The output dataset for the current timestep (the analysis-facing
    /// data).
    fn output(&self) -> Dataset;
}

/// Which substrate to instantiate (driver configuration).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimKind {
    /// Counter-derived deterministic field.
    Synthetic,
    /// 2-D advection–diffusion (COSMO proxy).
    Heat2d,
    /// 2-D Sedov blast wave (FLASH proxy).
    Sedov,
}

impl SimKind {
    /// Parses a kind from its configuration name.
    pub fn from_name(name: &str) -> Option<SimKind> {
        Some(match name.to_ascii_lowercase().as_str() {
            "synthetic" => SimKind::Synthetic,
            "heat2d" => SimKind::Heat2d,
            "sedov" => SimKind::Sedov,
            _ => return None,
        })
    }

    /// The configuration name.
    pub fn name(self) -> &'static str {
        match self {
            SimKind::Synthetic => "synthetic",
            SimKind::Heat2d => "heat2d",
            SimKind::Sedov => "sedov",
        }
    }
}

/// Builds a simulator of the given kind with default parameters and the
/// given seed (seeds select deterministic initial conditions).
pub fn build_sim(kind: SimKind, seed: u64) -> Box<dyn RestartableSim + Send> {
    match kind {
        SimKind::Synthetic => Box::new(SyntheticSim::new(seed)),
        SimKind::Heat2d => Box::new(Heat2d::new(32, 32, seed)),
        SimKind::Sedov => Box::new(Sedov::new(48, 48)),
    }
}

/// Runs a simulator until `stop_timestep`, invoking `on_output` at every
/// output boundary (`timestep % dd == 0`) with the output-step index
/// `timestep / dd`, and `on_restart` at every restart boundary
/// (`timestep % dr == 0`).
///
/// This is the cadence logic of §II-A: output step `d_i` contains the
/// timesteps up to and including `i·Δd`; restart step `r_j` snapshots
/// the state at `j·Δr`.
pub fn run_segment(
    sim: &mut dyn RestartableSim,
    dd: u64,
    dr: u64,
    stop_timestep: u64,
    mut on_output: impl FnMut(u64, Dataset),
    mut on_restart: impl FnMut(u64, Dataset),
) {
    assert!(dd > 0 && dr > 0, "cadences must be positive");
    while sim.timestep() < stop_timestep {
        sim.step();
        let t = sim.timestep();
        if t.is_multiple_of(dd) {
            on_output(t / dd, sim.output());
        }
        if t.is_multiple_of(dr) {
            on_restart(t / dr, sim.save_restart());
        }
    }
}

/// Convenience for tests and verification: bitwise digest of the output
/// at the current step.
pub fn output_digest(sim: &dyn RestartableSim) -> u64 {
    sim.output().digest()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_roundtrip() {
        for kind in [SimKind::Synthetic, SimKind::Heat2d, SimKind::Sedov] {
            assert_eq!(SimKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(SimKind::from_name("cosmo"), None);
    }

    #[test]
    fn run_segment_cadence() {
        let mut sim = SyntheticSim::new(1);
        let mut outputs = Vec::new();
        let mut restarts = Vec::new();
        run_segment(
            &mut sim,
            4,
            8,
            16,
            |i, _| outputs.push(i),
            |j, _| restarts.push(j),
        );
        assert_eq!(outputs, vec![1, 2, 3, 4], "Δd=4 over 16 timesteps");
        assert_eq!(restarts, vec![1, 2], "Δr=8 over 16 timesteps");
        assert_eq!(sim.timestep(), 16);
    }

    #[test]
    fn run_segment_resumes_mid_interval() {
        let mut sim = SyntheticSim::new(1);
        // Advance to timestep 5 manually, then run to 12 with dd=4.
        for _ in 0..5 {
            sim.step();
        }
        let mut outputs = Vec::new();
        run_segment(&mut sim, 4, 100, 12, |i, _| outputs.push(i), |_, _| {});
        assert_eq!(outputs, vec![2, 3]);
    }

    /// The cross-simulator contract: restart -> rerun is bitwise equal.
    #[test]
    fn all_simulators_are_bitwise_restartable() {
        for kind in [SimKind::Synthetic, SimKind::Heat2d, SimKind::Sedov] {
            let mut original = build_sim(kind, 42);
            for _ in 0..10 {
                original.step();
            }
            let restart = original.save_restart();
            for _ in 0..10 {
                original.step();
            }
            let final_output = original.output().encode();

            let mut replay = build_sim(kind, 999); // wrong seed on purpose
            replay.load_restart(&restart).unwrap();
            assert_eq!(replay.timestep(), 10, "{kind:?}");
            for _ in 0..10 {
                replay.step();
            }
            assert_eq!(
                replay.output().encode(),
                final_output,
                "{kind:?} replay diverged"
            );
        }
    }

    /// Restart files from one simulator are rejected by another.
    #[test]
    fn restart_files_are_typed() {
        let heat = build_sim(SimKind::Heat2d, 1);
        let mut sedov = build_sim(SimKind::Sedov, 1);
        let err = sedov.load_restart(&heat.save_restart());
        assert!(matches!(err, Err(SimError::RestartMismatch(_))));
    }
}
