// Fixture: unsafe hygiene. The first block is justified; the second
// has no SAFETY comment and must be flagged. Not compiled — consumed
// by include_str! in tests.

fn justified(fd: i32) -> i64 {
    // SAFETY: fd was returned open by epoll_create1 and is owned by
    // this struct; close is called exactly once, in Drop.
    unsafe { close(fd) }
}

fn bare(fd: i32) -> i64 {
    unsafe { close(fd) }
}
