//! Offline drop-in subset of the `bytes` crate.
//!
//! The container this workspace builds in has no access to crates.io,
//! so the handful of external dependencies are vendored as minimal
//! API-compatible implementations (see `vendor/README.md`). This one
//! provides [`BytesMut`], [`Bytes`], [`Buf`] and [`BufMut`] — exactly
//! the surface the wire protocol and the SDF codec use: little-endian
//! put/get of scalars over growable byte buffers and advancing slice
//! readers.

use std::ops::{Deref, DerefMut};

/// Growable byte buffer, the write side of every encoder.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { inner: Vec::new() }
    }

    /// An empty buffer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Number of written bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Clears the buffer, keeping its allocation.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Reserves space for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.inner.reserve(additional);
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { inner: self.inner }
    }

    /// Appends a byte slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(inner: Vec<u8>) -> BytesMut {
        BytesMut { inner }
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> BytesMut {
        BytesMut {
            inner: src.to_vec(),
        }
    }
}

/// Immutable byte buffer (frozen [`BytesMut`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    inner: Vec<u8>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes { inner: Vec::new() }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(inner: Vec<u8>) -> Bytes {
        Bytes { inner }
    }
}

impl From<&[u8]> for Bytes {
    fn from(src: &[u8]) -> Bytes {
        Bytes {
            inner: src.to_vec(),
        }
    }
}

/// Read cursor over bytes; implemented by `&[u8]` (reads advance the
/// slice in place).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out and advances past them.
    ///
    /// # Panics
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Skips `cnt` bytes.
    ///
    /// # Panics
    /// Panics if fewer than `cnt` bytes remain.
    fn advance(&mut self, cnt: usize);

    /// True if any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        f32::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }

    fn advance(&mut self, cnt: usize) {
        assert!(self.len() >= cnt, "buffer underflow");
        *self = &self[cnt..];
    }
}

/// Write cursor over a growable buffer; implemented by [`BytesMut`] and
/// `Vec<u8>`.
pub trait BufMut {
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(u64::MAX - 1);
        buf.put_i64_le(-42);
        buf.put_f64_le(1.5);
        buf.put_f32_le(-2.25);
        buf.put_slice(b"tail");

        let mut rd: &[u8] = &buf;
        assert_eq!(rd.get_u8(), 7);
        assert_eq!(rd.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(rd.get_u64_le(), u64::MAX - 1);
        assert_eq!(rd.get_i64_le(), -42);
        assert_eq!(rd.get_f64_le(), 1.5);
        assert_eq!(rd.get_f32_le(), -2.25);
        let mut tail = [0u8; 4];
        rd.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"tail");
        assert!(!rd.has_remaining());
    }

    #[test]
    fn freeze_preserves_contents() {
        let mut buf = BytesMut::new();
        buf.put_slice(b"abc");
        let frozen = buf.freeze();
        assert_eq!(&frozen[..], b"abc");
        assert_eq!(frozen.to_vec(), b"abc".to_vec());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut rd: &[u8] = &[1, 2];
        rd.get_u32_le();
    }
}
