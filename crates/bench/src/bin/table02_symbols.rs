//! Table II: the cost-model symbols, with the COSMO calibration values
//! (§V-A) filled in.
//!
//! `cargo run -p simfs-bench --bin table02_symbols`

use simcost::{Scenario, AZURE};
use simfs_bench::Table;

fn main() {
    let sc = Scenario::cosmo_paper(8.0);
    let mut t = Table::new(
        "Table II — cost model symbols (COSMO calibration, Δr = 8 h)",
        &["symbol", "definition", "value"],
    );
    let rows: Vec<(&str, &str, String)> = vec![
        ("Δt", "simulation data availability period", "swept (6m..5y)".into()),
        ("c_c", "compute cost ($/node/hour)", format!("{}", AZURE.compute_per_node_hour)),
        ("c_s", "storage cost ($/GiB/month)", format!("{}", AZURE.storage_per_gib_month)),
        ("n", "number of timesteps", sc.n_timesteps.to_string()),
        ("n_o", "number of output steps", sc.n_outputs().to_string()),
        ("n_r", "number of restart steps", sc.n_restarts().to_string()),
        ("s_o", "output step size (GiB)", format!("{}", sc.output_gib)),
        ("s_r", "restart step size (GiB)", format!("{}", sc.restart_gib)),
        ("P", "compute nodes for re-simulations", sc.nodes.to_string()),
        ("tau_sim(P)", "seconds per output step", format!("{}", sc.tau_sim_secs)),
    ];
    for (sym, def, val) in rows {
        t.row(vec![sym.to_string(), def.to_string(), val]);
    }
    t.print();
}
