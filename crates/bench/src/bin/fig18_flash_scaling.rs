//! Fig. 18: strong scalability of analyses on virtualized FLASH (Sedov)
//! data.
//!
//! `cargo run -p simfs-bench --bin fig18_flash_scaling`

use simfs_bench::prefetchfigs::{scaling, scaling_table, ScalingConfig};
use simfs_bench::RunOpts;

fn main() {
    let opts = RunOpts::from_args();
    let cfg = ScalingConfig::flash();
    let points = scaling(&cfg, &opts);
    let table = scaling_table(&cfg, &points);
    table.print();
    let path = table
        .write_csv(&opts.out_dir, "fig18_flash_scaling")
        .expect("write CSV");
    println!("\nCSV: {}", path.display());
}
