//! The three availability cost models (§V).

use crate::calib::{Rates, Scenario};
use serde::{Deserialize, Serialize};

/// Cost components in $, so harnesses can report stacked breakdowns.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Initial full simulation (zero for in-situ, where all simulation
    /// is attributed to re-simulation).
    pub initial_sim: f64,
    /// Storage over the availability period.
    pub storage: f64,
    /// Re-simulation compute (SimFS misses / in-situ per-analysis runs).
    pub resim: f64,
}

impl CostBreakdown {
    /// Total cost in $.
    pub fn total(&self) -> f64 {
        self.initial_sim + self.storage + self.resim
    }
}

/// `C_on-disk(Δt) = C_sim(n_o, P) + C_store(n_o, s_o, Δt)`: simulate
/// once, store all output steps for the whole period. Independent of the
/// analyses performed.
pub fn cost_on_disk(sc: &Scenario, rates: &Rates, months: f64) -> CostBreakdown {
    CostBreakdown {
        initial_sim: sc.csim(sc.n_outputs(), rates),
        storage: Scenario::cstore(sc.total_output_gib(), months, rates),
        resim: 0.0,
    }
}

/// `C_in-situ(Δt) = Σ_j C_sim(i_j + |γ(j)|, P)`: every analysis couples
/// with its own simulation from output step 0 to the last step it
/// accesses (the steps before its start index are simulated but unused,
/// §V). `analyses` holds `(start_index, accessed_steps)` pairs.
pub fn cost_in_situ(sc: &Scenario, rates: &Rates, analyses: &[(u64, u64)]) -> CostBreakdown {
    let mut resim = 0.0;
    for &(start, len) in analyses {
        let last = (start + len).min(sc.n_outputs());
        resim += sc.csim(last, rates);
    }
    CostBreakdown {
        initial_sim: 0.0,
        storage: 0.0,
        resim,
    }
}

/// `C_SimFS(Δt) = C_sim(n_o, P) + C_store(n_r, s_r, Δt) +
/// C_store(M, s_o, Δt) + C_sim(V(γ), P)`.
///
/// * `cache_fraction` — cache size `M` as a fraction of the total output
///   volume (the paper evaluates 25% and 50%);
/// * `resimulated_steps` — `V(γ_Δt)`, measured by replaying the workload
///   through the DV (see `simfs-core::replay`).
pub fn cost_simfs(
    sc: &Scenario,
    rates: &Rates,
    months: f64,
    cache_fraction: f64,
    resimulated_steps: u64,
) -> CostBreakdown {
    assert!(
        (0.0..=1.0).contains(&cache_fraction),
        "cache fraction out of range: {cache_fraction}"
    );
    let cache_gib = sc.total_output_gib() * cache_fraction;
    CostBreakdown {
        initial_sim: sc.csim(sc.n_outputs(), rates),
        storage: Scenario::cstore(sc.total_restart_gib(), months, rates)
            + Scenario::cstore(cache_gib, months, rates),
        resim: sc.csim(resimulated_steps, rates),
    }
}

/// Wall-clock compute hours spent re-simulating `V` output steps
/// (Fig. 15c's y-axis).
pub fn resim_compute_hours(sc: &Scenario, resimulated_steps: u64) -> f64 {
    sc.sim_hours(resimulated_steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calib::AZURE;

    fn sc() -> Scenario {
        Scenario::cosmo_paper(8.0)
    }

    #[test]
    fn on_disk_five_years_matches_paper_magnitude() {
        // Fig. 1: on-disk exceeds $200k over five years.
        let c = cost_on_disk(&sc(), &AZURE, 60.0);
        assert!(c.total() > 150_000.0 && c.total() < 250_000.0, "{c:?}");
        assert_eq!(c.resim, 0.0);
    }

    #[test]
    fn on_disk_grows_linearly_with_period() {
        let c1 = cost_on_disk(&sc(), &AZURE, 12.0);
        let c2 = cost_on_disk(&sc(), &AZURE, 24.0);
        let storage_ratio = c2.storage / c1.storage;
        assert!((storage_ratio - 2.0).abs() < 1e-9);
        assert_eq!(c1.initial_sim, c2.initial_sim);
    }

    #[test]
    fn in_situ_is_period_independent_and_analysis_linear() {
        let analyses: Vec<(u64, u64)> = (0..10).map(|i| (i * 100, 200)).collect();
        let c = cost_in_situ(&sc(), &AZURE, &analyses);
        assert_eq!(c.initial_sim, 0.0);
        assert_eq!(c.storage, 0.0);
        let c2 = cost_in_situ(&sc(), &AZURE, &analyses[..5]);
        assert!(c.resim > c2.resim);
    }

    #[test]
    fn in_situ_clamps_to_timeline_end() {
        let n_o = sc().n_outputs();
        let a = cost_in_situ(&sc(), &AZURE, &[(n_o - 10, 1_000_000)]);
        let b = cost_in_situ(&sc(), &AZURE, &[(0, n_o)]);
        assert!((a.resim - b.resim).abs() < 1e-9, "clamped to full run");
    }

    #[test]
    fn simfs_storage_between_nothing_and_everything() {
        let months = 24.0;
        let simfs = cost_simfs(&sc(), &AZURE, months, 0.25, 0);
        let ondisk = cost_on_disk(&sc(), &AZURE, months);
        assert!(simfs.storage > 0.0);
        assert!(
            simfs.storage < ondisk.storage,
            "25% cache + restarts must undercut full storage: {} vs {}",
            simfs.storage,
            ondisk.storage
        );
    }

    #[test]
    fn simfs_cost_increases_with_cache_and_resims() {
        let base = cost_simfs(&sc(), &AZURE, 24.0, 0.25, 1000);
        let bigger_cache = cost_simfs(&sc(), &AZURE, 24.0, 0.50, 1000);
        let more_resims = cost_simfs(&sc(), &AZURE, 24.0, 0.25, 5000);
        assert!(bigger_cache.storage > base.storage);
        assert!(more_resims.resim > base.resim);
    }

    #[test]
    fn fig15b_tradeoff_direction() {
        // Larger Δr ⇒ less restart storage but (given same V) the
        // storage component must drop.
        let a = cost_simfs(&Scenario::cosmo_paper(4.0), &AZURE, 36.0, 0.25, 0);
        let b = cost_simfs(&Scenario::cosmo_paper(16.0), &AZURE, 36.0, 0.25, 0);
        assert!(b.storage < a.storage);
    }

    #[test]
    fn resim_hours_match_tau() {
        let h = resim_compute_hours(&sc(), 180);
        assert!((h - 1.0).abs() < 1e-9, "180 steps × 20 s = 1 h, got {h}");
    }

    #[test]
    #[should_panic(expected = "cache fraction")]
    fn bad_cache_fraction_panics() {
        cost_simfs(&sc(), &AZURE, 12.0, 1.5, 0);
    }
}
