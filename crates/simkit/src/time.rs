//! Virtual time: instants ([`SimTime`]) and spans ([`Dur`]).
//!
//! Both are nanosecond-resolution unsigned integers. Nanoseconds in a
//! `u64` cover ~584 years of virtual time, far beyond any experiment in
//! the paper (the longest availability period studied is five years, and
//! that one is handled analytically by the cost models, not the engine).
//!
//! Keeping instants and durations as distinct types prevents the classic
//! "added two timestamps" bug; only the operations that make dimensional
//! sense are implemented.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in virtual time, measured in nanoseconds since the start of
/// the simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of virtual time in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Dur(u64);

const NANOS_PER_MICRO: u64 = 1_000;
const NANOS_PER_MILLI: u64 = 1_000_000;
const NANOS_PER_SEC: u64 = 1_000_000_000;

impl SimTime {
    /// The origin of virtual time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far"
    /// deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `n` nanoseconds after the origin.
    pub const fn from_nanos(n: u64) -> Self {
        SimTime(n)
    }

    /// Creates an instant `s` seconds after the origin.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * NANOS_PER_SEC)
    }

    /// Creates an instant from fractional seconds.
    ///
    /// # Panics
    /// Panics on negative or non-finite input.
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime(secs_f64_to_nanos(s))
    }

    /// Nanoseconds since the origin.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole seconds since the origin (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / NANOS_PER_SEC
    }

    /// Fractional seconds since the origin.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Span from `earlier` to `self`, or zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }

    /// Span from `earlier` to `self` if non-negative.
    pub fn checked_since(self, earlier: SimTime) -> Option<Dur> {
        self.0.checked_sub(earlier.0).map(Dur)
    }

    /// The instant `d` later, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: Dur) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl Dur {
    /// The empty span.
    pub const ZERO: Dur = Dur(0);
    /// The largest representable span.
    pub const MAX: Dur = Dur(u64::MAX);

    /// A span of `n` nanoseconds.
    pub const fn from_nanos(n: u64) -> Self {
        Dur(n)
    }

    /// A span of `n` microseconds.
    pub const fn from_micros(n: u64) -> Self {
        Dur(n * NANOS_PER_MICRO)
    }

    /// A span of `n` milliseconds.
    pub const fn from_millis(n: u64) -> Self {
        Dur(n * NANOS_PER_MILLI)
    }

    /// A span of `n` seconds.
    pub const fn from_secs(n: u64) -> Self {
        Dur(n * NANOS_PER_SEC)
    }

    /// A span of `n` minutes.
    pub const fn from_mins(n: u64) -> Self {
        Dur(n * 60 * NANOS_PER_SEC)
    }

    /// A span of `n` hours.
    pub const fn from_hours(n: u64) -> Self {
        Dur(n * 3600 * NANOS_PER_SEC)
    }

    /// A span from fractional seconds.
    ///
    /// # Panics
    /// Panics on negative or non-finite input.
    pub fn from_secs_f64(s: f64) -> Self {
        Dur(secs_f64_to_nanos(s))
    }

    /// Length in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Length in whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / NANOS_PER_SEC
    }

    /// Length in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// True if the span is empty.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating difference between two spans.
    pub fn saturating_sub(self, rhs: Dur) -> Dur {
        Dur(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies the span by an integer factor, saturating.
    pub fn saturating_mul(self, k: u64) -> Dur {
        Dur(self.0.saturating_mul(k))
    }

    /// Scales the span by a non-negative float (rounds to nearest ns).
    ///
    /// # Panics
    /// Panics on negative or non-finite factors.
    pub fn mul_f64(self, k: f64) -> Dur {
        assert!(k.is_finite() && k >= 0.0, "invalid duration factor {k}");
        Dur((self.0 as f64 * k).round().min(u64::MAX as f64) as u64)
    }

    /// Divides the span by an integer divisor.
    ///
    /// # Panics
    /// Panics on division by zero.
    pub fn div_u64(self, k: u64) -> Dur {
        Dur(self.0 / k)
    }
}

fn secs_f64_to_nanos(s: f64) -> u64 {
    assert!(s.is_finite() && s >= 0.0, "invalid time value {s}");
    let ns = s * NANOS_PER_SEC as f64;
    if ns >= u64::MAX as f64 {
        u64::MAX
    } else {
        ns.round() as u64
    }
}

impl Add<Dur> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Dur) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("virtual time overflow"),
        )
    }
}

impl AddAssign<Dur> for SimTime {
    fn add_assign(&mut self, rhs: Dur) {
        *self = *self + rhs;
    }
}

impl Sub<Dur> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: Dur) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("virtual time underflow"),
        )
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Dur;
    fn sub(self, rhs: SimTime) -> Dur {
        Dur(self
            .0
            .checked_sub(rhs.0)
            .expect("elapsed() of a later instant"))
    }
}

impl Add for Dur {
    type Output = Dur;
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0.checked_add(rhs.0).expect("duration overflow"))
    }
}

impl AddAssign for Dur {
    fn add_assign(&mut self, rhs: Dur) {
        *self = *self + rhs;
    }
}

impl Sub for Dur {
    type Output = Dur;
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self.0.checked_sub(rhs.0).expect("duration underflow"))
    }
}

impl SubAssign for Dur {
    fn sub_assign(&mut self, rhs: Dur) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Dur {
    type Output = Dur;
    fn mul(self, rhs: u64) -> Dur {
        Dur(self.0.checked_mul(rhs).expect("duration overflow"))
    }
}

impl Div<u64> for Dur {
    type Output = Dur;
    fn div(self, rhs: u64) -> Dur {
        Dur(self.0 / rhs)
    }
}

impl Div<Dur> for Dur {
    type Output = f64;
    /// Ratio of two spans, e.g. `tau_cli / tau_sim` in the prefetch model.
    fn div(self, rhs: Dur) -> f64 {
        self.0 as f64 / rhs.0 as f64
    }
}

impl Sum for Dur {
    fn sum<I: Iterator<Item = Dur>>(iter: I) -> Dur {
        iter.fold(Dur::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", format_nanos(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_nanos(self.0))
    }
}

impl fmt::Debug for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_nanos(self.0))
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_nanos(self.0))
    }
}

fn format_nanos(ns: u64) -> String {
    if ns == 0 {
        "0s".to_string()
    } else if ns.is_multiple_of(NANOS_PER_SEC) {
        let s = ns / NANOS_PER_SEC;
        if s.is_multiple_of(3600) {
            format!("{}h", s / 3600)
        } else {
            format!("{s}s")
        }
    } else if ns.is_multiple_of(NANOS_PER_MILLI) {
        format!("{}ms", ns / NANOS_PER_MILLI)
    } else if ns.is_multiple_of(NANOS_PER_MICRO) {
        format!("{}us", ns / NANOS_PER_MICRO)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_plus_duration() {
        let t = SimTime::from_secs(10) + Dur::from_millis(500);
        assert_eq!(t.as_nanos(), 10_500_000_000);
    }

    #[test]
    fn instant_difference_is_duration() {
        let a = SimTime::from_secs(4);
        let b = SimTime::from_secs(10);
        assert_eq!(b - a, Dur::from_secs(6));
    }

    #[test]
    #[should_panic(expected = "later instant")]
    fn negative_elapsed_panics() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.saturating_since(b), Dur::ZERO);
        assert_eq!(b.saturating_since(a), Dur::from_secs(1));
    }

    #[test]
    fn float_roundtrip() {
        let d = Dur::from_secs_f64(13.25);
        assert_eq!(d.as_nanos(), 13_250_000_000);
        assert!((d.as_secs_f64() - 13.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid time value")]
    fn negative_seconds_panic() {
        let _ = Dur::from_secs_f64(-1.0);
    }

    #[test]
    fn duration_ratio() {
        assert!((Dur::from_secs(3) / Dur::from_secs(2) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn duration_scaling() {
        assert_eq!(Dur::from_secs(2) * 3, Dur::from_secs(6));
        assert_eq!(Dur::from_secs(6) / 3, Dur::from_secs(2));
        assert_eq!(Dur::from_secs(2).mul_f64(1.5), Dur::from_secs(3));
    }

    #[test]
    fn display_picks_coarsest_unit() {
        assert_eq!(Dur::from_hours(4).to_string(), "4h");
        assert_eq!(Dur::from_secs(90).to_string(), "90s");
        assert_eq!(Dur::from_millis(20).to_string(), "20ms");
        assert_eq!(Dur::from_nanos(7).to_string(), "7ns");
    }

    #[test]
    fn sum_of_durations() {
        let total: Dur = [Dur::from_secs(1), Dur::from_secs(2)].into_iter().sum();
        assert_eq!(total, Dur::from_secs(3));
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(Dur::MAX.saturating_mul(2), Dur::MAX);
        assert_eq!(SimTime::MAX.saturating_add(Dur::from_secs(1)), SimTime::MAX);
        assert_eq!(Dur::from_secs(1).saturating_sub(Dur::from_secs(5)), Dur::ZERO);
    }
}
