//! Transparent mode: the I/O-library interposition facade (§III-C1,
//! Table I).
//!
//! The paper's DVLib interposes on netCDF/HDF5/ADIOS entry points so
//! unmodified analyses work on virtualized data. The equivalent here is
//! [`VirtualFs`]: open/read/close over SDF datasets where `open` blocks
//! (acquires through the DV) until missing steps are re-simulated, and
//! `close` releases the pin. The per-dialect wrappers ([`netcdf`],
//! [`hdf5`], [`adios`]) carry the paper's Table I names so a port of an
//! existing analysis is a textual substitution.

use crate::client::SimfsClient;
use crate::driver::SimDriver;
use simstore::{Dataset, StorageArea};
use std::io;
use std::sync::Arc;

/// A virtualized view of a simulation context's output files.
///
/// Files are addressed by their *names* (the driver's naming
/// convention); the DV works in keys internally.
pub struct VirtualFs {
    client: SimfsClient,
    driver: Arc<dyn SimDriver>,
    storage: StorageArea,
}

impl VirtualFs {
    /// Wraps an analysis session with the context's naming convention
    /// and storage area.
    pub fn new(client: SimfsClient, driver: Arc<dyn SimDriver>, storage: StorageArea) -> VirtualFs {
        VirtualFs {
            client,
            driver,
            storage,
        }
    }

    fn key_for(&self, filename: &str) -> io::Result<u64> {
        self.driver.key_of(filename).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("{filename:?} does not follow the context's naming convention"),
            )
        })
    }

    /// Transparent `open` + `read`: blocks until the step is on disk
    /// (re-simulating if needed), then parses it. The file stays pinned
    /// until [`close`](Self::close).
    pub fn open(&mut self, filename: &str) -> io::Result<Dataset> {
        let key = self.key_for(filename)?;
        let status = self.client.acquire(&[key])?;
        if let Some((k, reason)) = status.failed.first() {
            return Err(io::Error::other(format!("acquire of step {k} failed: {reason}")));
        }
        let bytes = self.storage.read(filename)?;
        Dataset::decode(&bytes).map_err(io::Error::other)
    }

    /// Transparent `close`: releases the pin taken by
    /// [`open`](Self::open).
    pub fn close(&mut self, filename: &str) -> io::Result<()> {
        let key = self.key_for(filename)?;
        self.client.release(key)?;
        // The transparent API promises the pin is dropped at close —
        // an analysis may compute for hours before its next SimFS call,
        // and a staged release would hold the step unevictable the
        // whole time. Flush instead of riding the next request.
        self.client.flush()
    }

    /// Does the file currently exist on disk? (No DV round-trip; the
    /// virtualized answer to "is it materialized", not "does it exist"
    /// — under SimFS every valid name virtually exists.)
    pub fn is_materialized(&self, filename: &str) -> bool {
        self.storage.exists(filename)
    }

    /// Access to the underlying session for the explicit SimFS API
    /// (§III-C2) alongside transparent calls.
    pub fn session(&mut self) -> &mut SimfsClient {
        &mut self.client
    }

    /// Finalizes the session.
    pub fn finalize(self) -> io::Result<()> {
        self.client.finalize()
    }
}

/// One row of the paper's Table I: a data-access operation and its name
/// in each supported I/O library.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DialectRow {
    /// Abstract operation.
    pub call: &'static str,
    /// (P)NetCDF entry point.
    pub netcdf: &'static str,
    /// (P)HDF5 entry point.
    pub hdf5: &'static str,
    /// ADIOS entry point.
    pub adios: &'static str,
}

/// Table I of the paper: the mapping of data-access operations to I/O
/// libraries.
pub const TABLE_I: [DialectRow; 4] = [
    DialectRow {
        call: "open",
        netcdf: "nc(mpi)_open",
        hdf5: "H5Fopen",
        adios: "adios_open (r)",
    },
    DialectRow {
        call: "create",
        netcdf: "nc(mpi)_create",
        hdf5: "H5Fcreate",
        adios: "adios_open (w)",
    },
    DialectRow {
        call: "read",
        netcdf: "nc(mpi)_vara_get_type",
        hdf5: "H5Dread",
        adios: "adios_schedule_read",
    },
    DialectRow {
        call: "close",
        netcdf: "nc(mpi)_close",
        hdf5: "H5Fclose",
        adios: "adios_close",
    },
];

/// netCDF-flavoured wrappers (Table I, column 2).
pub mod netcdf {
    use super::VirtualFs;
    use simstore::Dataset;
    use std::io;

    /// `nc_open`: transparent open of a virtualized file.
    pub fn nc_open(vfs: &mut VirtualFs, path: &str) -> io::Result<Dataset> {
        vfs.open(path)
    }

    /// `nc_vara_get_double`: reads a variable from an opened dataset.
    pub fn nc_vara_get_double<'d>(ds: &'d Dataset, var: &str) -> io::Result<&'d [f64]> {
        ds.var(var)
            .and_then(|v| v.data.as_f64())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("no f64 var {var:?}")))
    }

    /// `nc_close`: transparent close.
    pub fn nc_close(vfs: &mut VirtualFs, path: &str) -> io::Result<()> {
        vfs.close(path)
    }
}

/// HDF5-flavoured wrappers (Table I, column 3).
pub mod hdf5 {
    use super::VirtualFs;
    use simstore::Dataset;
    use std::io;

    /// `H5Fopen`.
    pub fn h5f_open(vfs: &mut VirtualFs, path: &str) -> io::Result<Dataset> {
        vfs.open(path)
    }

    /// `H5Dread`.
    pub fn h5d_read<'d>(ds: &'d Dataset, dataset: &str) -> io::Result<&'d [f64]> {
        super::netcdf::nc_vara_get_double(ds, dataset)
    }

    /// `H5Fclose`.
    pub fn h5f_close(vfs: &mut VirtualFs, path: &str) -> io::Result<()> {
        vfs.close(path)
    }
}

/// ADIOS-flavoured wrappers (Table I, column 4).
pub mod adios {
    use super::VirtualFs;
    use simstore::Dataset;
    use std::io;

    /// `adios_open` in read mode.
    pub fn adios_open_read(vfs: &mut VirtualFs, path: &str) -> io::Result<Dataset> {
        vfs.open(path)
    }

    /// `adios_schedule_read` (immediate in this facade).
    pub fn adios_schedule_read<'d>(ds: &'d Dataset, var: &str) -> io::Result<&'d [f64]> {
        super::netcdf::nc_vara_get_double(ds, var)
    }

    /// `adios_close`.
    pub fn adios_close(vfs: &mut VirtualFs, path: &str) -> io::Result<()> {
        vfs.close(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_matches_paper() {
        assert_eq!(TABLE_I.len(), 4);
        assert_eq!(TABLE_I[0].hdf5, "H5Fopen");
        assert_eq!(TABLE_I[2].adios, "adios_schedule_read");
        assert_eq!(TABLE_I[3].netcdf, "nc(mpi)_close");
        let calls: Vec<&str> = TABLE_I.iter().map(|r| r.call).collect();
        assert_eq!(calls, vec!["open", "create", "read", "close"]);
    }
}
