//! Context setup: the "initial simulation" of Fig. 2.
//!
//! Before SimFS can virtualize a context, the simulation must have run
//! once, leaving behind (1) the restart files the re-simulations start
//! from and (2) the checksum database `SIMFS_Bitrep` verifies against.
//! [`run_initial_simulation`] performs that run in-process; the
//! `simfs-simd --init` binary does the same as a standalone command.

use simstore::{checksum_db, StorageArea};
use simulators::{build_sim, SimKind};
use std::collections::HashMap;
use std::io;

/// Outcome of the initial simulation.
#[derive(Debug)]
pub struct InitialRun {
    /// Number of restart files written (excluding restart 0).
    pub restarts: u64,
    /// Checksums of every output step (key → FNV-1a digest), also
    /// persisted as `checksums.db` in the storage area.
    pub checksums: HashMap<u64, u64>,
}

/// Runs `kind` from its initial conditions for `timesteps`, writing
/// restart files every `dr` timesteps into `area` and recording output
/// checksums every `dd` timesteps. Output data itself is *not* stored —
/// that is SimFS's premise.
pub fn run_initial_simulation(
    area: &StorageArea,
    kind: SimKind,
    seed: u64,
    dd: u64,
    dr: u64,
    timesteps: u64,
) -> io::Result<InitialRun> {
    assert!(dd > 0 && dr.is_multiple_of(dd), "Δr must be a multiple of Δd");
    let mut sim = build_sim(kind, seed);
    let mut checksums = HashMap::new();

    area.publish("restart-000000.sdf", &sim.save_restart().encode())?;
    let mut restarts = 0;
    while sim.timestep() < timesteps {
        sim.step();
        let t = sim.timestep();
        if t.is_multiple_of(dd) {
            let bytes = sim.output().encode();
            checksums.insert(t / dd, simstore::fnv1a64(&bytes));
        }
        if t.is_multiple_of(dr) {
            let j = t / dr;
            area.publish(&format!("restart-{j:06}.sdf"), &sim.save_restart().encode())?;
            restarts += 1;
        }
    }
    checksum_db::save(&area.root().join(checksum_db::DB_FILENAME), &checksums)?;
    Ok(InitialRun { restarts, checksums })
}
