//! Property tests: the checkpoint/restart contract that SimFS's whole
//! premise rests on — re-running from any restart point is bitwise
//! identical — plus physics invariants under arbitrary step counts.

use proptest::prelude::*;
use simstore::Dataset;
use simulators::{build_sim, RestartableSim, SimKind};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any split point, "run A then checkpoint then run B" equals
    /// "run A+B" bitwise — on every simulator kind.
    #[test]
    fn restart_equals_continuous_run(
        seed in any::<u64>(),
        pre in 1u64..30,
        post in 1u64..30,
    ) {
        for kind in [SimKind::Synthetic, SimKind::Heat2d, SimKind::Sedov] {
            let mut continuous = build_sim(kind, seed);
            for _ in 0..pre + post {
                continuous.step();
            }
            let expected = continuous.output().encode();

            let mut first = build_sim(kind, seed);
            for _ in 0..pre {
                first.step();
            }
            let ckpt = first.save_restart();
            // Checkpoint files survive (de)serialization unchanged.
            let ckpt = Dataset::decode(&ckpt.encode()).unwrap();
            let mut resumed = build_sim(kind, seed ^ 0xDEAD); // wrong seed: must not matter
            resumed.load_restart(&ckpt).unwrap();
            prop_assert_eq!(resumed.timestep(), pre);
            for _ in 0..post {
                resumed.step();
            }
            prop_assert_eq!(
                resumed.output().encode(),
                expected.clone(),
                "{:?} diverged (pre={}, post={})",
                kind,
                pre,
                post
            );
        }
    }

    /// Heat2d: the field mean is conserved and the maximum never grows
    /// (maximum principle) for any seed and step count.
    #[test]
    fn heat2d_physics_invariants(seed in any::<u64>(), steps in 1u64..200) {
        let mut sim = simulators::Heat2d::new(16, 16, seed);
        let mean0 = sim.mean();
        let max0 = sim.field().iter().cloned().fold(f64::MIN, f64::max);
        for _ in 0..steps {
            sim.step();
        }
        let mean1 = sim.mean();
        prop_assert!(((mean0 - mean1) / mean0.abs().max(1e-12)).abs() < 1e-8);
        let max1 = sim.field().iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!(max1 <= max0 * (1.0 + 1e-9));
        prop_assert!(sim.field().iter().all(|x| x.is_finite()));
    }

    /// Sedov: mass and energy are conserved on the periodic domain for
    /// any step count; density stays positive.
    #[test]
    fn sedov_conservation(steps in 1u64..150) {
        let mut sim = simulators::Sedov::new(16, 16);
        let m0 = sim.total_mass();
        let e0 = sim.total_energy();
        for _ in 0..steps {
            sim.step();
        }
        prop_assert!(((sim.total_mass() - m0) / m0).abs() < 1e-9);
        prop_assert!(((sim.total_energy() - e0) / e0).abs() < 1e-9);
        prop_assert!(sim.density().iter().all(|&x| x.is_finite() && x > 0.0));
    }

    /// Synthetic: outputs at equal timesteps are equal; at different
    /// timesteps they differ (the DV relies on per-step content).
    #[test]
    fn synthetic_outputs_are_step_determined(seed in any::<u64>(), a in 0u64..50, b in 0u64..50) {
        let mut x = simulators::SyntheticSim::new(seed);
        for _ in 0..a {
            x.step();
        }
        let mut y = simulators::SyntheticSim::new(seed);
        for _ in 0..b {
            y.step();
        }
        if a == b {
            prop_assert_eq!(x.output().encode(), y.output().encode());
        } else {
            prop_assert_ne!(x.output().digest(), y.output().digest());
        }
    }
}
