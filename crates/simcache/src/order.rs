//! [`KeyedList`]: a hash-indexed doubly-linked list over a slab.
//!
//! All recency/FIFO orders in this crate are built on this structure. It
//! provides O(1) insert at either end, O(1) removal and move-to-front by
//! key, and ordered iteration from either end — without per-node heap
//! allocation (nodes live in a `Vec` with an internal free list).

use crate::fasthash::{u64_map, U64Map};

const NIL: usize = usize::MAX;

#[derive(Clone, Debug)]
struct Node {
    key: u64,
    prev: usize,
    next: usize,
}

/// A doubly-linked list of unique `u64` keys with a by-key index.
///
/// "Front" is the most-recently-touched end for recency lists (MRU);
/// "back" is the eviction end (LRU).
#[derive(Clone, Debug, Default)]
pub struct KeyedList {
    nodes: Vec<Node>,
    free: Vec<usize>,
    index: U64Map<usize>,
    head: usize,
    tail: usize,
}

impl KeyedList {
    /// An empty list.
    pub fn new() -> Self {
        KeyedList {
            nodes: Vec::new(),
            free: Vec::new(),
            index: u64_map(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Number of keys in the list.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True if the list is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Is `key` present?
    pub fn contains(&self, key: u64) -> bool {
        self.index.contains_key(&key)
    }

    fn alloc(&mut self, key: u64) -> usize {
        let node = Node {
            key,
            prev: NIL,
            next: NIL,
        };
        if let Some(i) = self.free.pop() {
            self.nodes[i] = node;
            i
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    /// Inserts `key` at the front.
    ///
    /// # Panics
    /// Panics if `key` is already present (keys are unique).
    pub fn push_front(&mut self, key: u64) {
        assert!(!self.contains(key), "duplicate key {key} in KeyedList");
        let i = self.alloc(key);
        self.nodes[i].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
        self.index.insert(key, i);
    }

    /// Inserts `key` at the back.
    ///
    /// # Panics
    /// Panics if `key` is already present.
    pub fn push_back(&mut self, key: u64) {
        assert!(!self.contains(key), "duplicate key {key} in KeyedList");
        let i = self.alloc(key);
        self.nodes[i].prev = self.tail;
        if self.tail != NIL {
            self.nodes[self.tail].next = i;
        }
        self.tail = i;
        if self.head == NIL {
            self.head = i;
        }
        self.index.insert(key, i);
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.nodes[i].prev, self.nodes[i].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.free.push(i);
    }

    /// Removes `key` if present; returns whether it was present.
    pub fn remove(&mut self, key: u64) -> bool {
        match self.index.remove(&key) {
            Some(i) => {
                self.unlink(i);
                true
            }
            None => false,
        }
    }

    /// Moves an existing `key` to the front; returns whether it was
    /// present.
    pub fn move_to_front(&mut self, key: u64) -> bool {
        let Some(&i) = self.index.get(&key) else {
            return false;
        };
        if self.head == i {
            return true;
        }
        // Unlink in place, then relink at head, reusing the same slot.
        let (prev, next) = (self.nodes[i].prev, self.nodes[i].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.nodes[i].prev = NIL;
        self.nodes[i].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = i;
        }
        self.head = i;
        true
    }

    /// The front (most recent) key.
    pub fn front(&self) -> Option<u64> {
        (self.head != NIL).then(|| self.nodes[self.head].key)
    }

    /// The back (least recent) key.
    pub fn back(&self) -> Option<u64> {
        (self.tail != NIL).then(|| self.nodes[self.tail].key)
    }

    /// Removes and returns the back key.
    pub fn pop_back(&mut self) -> Option<u64> {
        let key = self.back()?;
        self.remove(key);
        Some(key)
    }

    /// Removes and returns the front key.
    pub fn pop_front(&mut self) -> Option<u64> {
        let key = self.front()?;
        self.remove(key);
        Some(key)
    }

    /// Iterates keys from back (least recent) to front.
    pub fn iter_back_to_front(&self) -> BackToFront<'_> {
        BackToFront {
            list: self,
            cur: self.tail,
        }
    }

    /// Iterates keys from front (most recent) to back.
    pub fn iter_front_to_back(&self) -> FrontToBack<'_> {
        FrontToBack {
            list: self,
            cur: self.head,
        }
    }
}

/// Iterator over a [`KeyedList`] from the eviction end.
pub struct BackToFront<'a> {
    list: &'a KeyedList,
    cur: usize,
}

impl Iterator for BackToFront<'_> {
    type Item = u64;
    fn next(&mut self) -> Option<u64> {
        if self.cur == NIL {
            return None;
        }
        let node = &self.list.nodes[self.cur];
        self.cur = node.prev;
        Some(node.key)
    }
}

/// Iterator over a [`KeyedList`] from the MRU end.
pub struct FrontToBack<'a> {
    list: &'a KeyedList,
    cur: usize,
}

impl Iterator for FrontToBack<'_> {
    type Item = u64;
    fn next(&mut self) -> Option<u64> {
        if self.cur == NIL {
            return None;
        }
        let node = &self.list.nodes[self.cur];
        self.cur = node.next;
        Some(node.key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect_fb(l: &KeyedList) -> Vec<u64> {
        l.iter_front_to_back().collect()
    }

    #[test]
    fn push_front_orders_mru_first() {
        let mut l = KeyedList::new();
        l.push_front(1);
        l.push_front(2);
        l.push_front(3);
        assert_eq!(collect_fb(&l), vec![3, 2, 1]);
        assert_eq!(l.front(), Some(3));
        assert_eq!(l.back(), Some(1));
    }

    #[test]
    fn push_back_appends() {
        let mut l = KeyedList::new();
        l.push_back(1);
        l.push_back(2);
        assert_eq!(collect_fb(&l), vec![1, 2]);
    }

    #[test]
    fn move_to_front_reorders() {
        let mut l = KeyedList::new();
        for k in [1, 2, 3] {
            l.push_front(k);
        }
        assert!(l.move_to_front(1));
        assert_eq!(collect_fb(&l), vec![1, 3, 2]);
        assert!(l.move_to_front(1), "moving the head is a no-op");
        assert_eq!(collect_fb(&l), vec![1, 3, 2]);
        assert!(!l.move_to_front(42));
    }

    #[test]
    fn remove_middle_and_ends() {
        let mut l = KeyedList::new();
        for k in [1, 2, 3, 4] {
            l.push_back(k);
        }
        assert!(l.remove(2));
        assert_eq!(collect_fb(&l), vec![1, 3, 4]);
        assert!(l.remove(1));
        assert!(l.remove(4));
        assert_eq!(collect_fb(&l), vec![3]);
        assert!(!l.remove(1));
        assert!(l.remove(3));
        assert!(l.is_empty());
        assert_eq!(l.front(), None);
        assert_eq!(l.back(), None);
    }

    #[test]
    fn pop_back_and_front() {
        let mut l = KeyedList::new();
        for k in [1, 2, 3] {
            l.push_back(k);
        }
        assert_eq!(l.pop_back(), Some(3));
        assert_eq!(l.pop_front(), Some(1));
        assert_eq!(l.pop_back(), Some(2));
        assert_eq!(l.pop_back(), None);
    }

    #[test]
    fn slots_are_reused() {
        let mut l = KeyedList::new();
        for k in 0..100 {
            l.push_front(k);
        }
        for k in 0..100 {
            l.remove(k);
        }
        for k in 100..200 {
            l.push_front(k);
        }
        // Slab should not have grown past the peak of 100 live nodes.
        assert!(l.nodes.len() <= 100);
        assert_eq!(l.len(), 100);
    }

    #[test]
    #[should_panic(expected = "duplicate key")]
    fn duplicate_push_panics() {
        let mut l = KeyedList::new();
        l.push_front(1);
        l.push_front(1);
    }

    #[test]
    fn back_to_front_iteration() {
        let mut l = KeyedList::new();
        for k in [5, 6, 7] {
            l.push_front(k);
        }
        let back: Vec<u64> = l.iter_back_to_front().collect();
        assert_eq!(back, vec![5, 6, 7]);
    }
}
