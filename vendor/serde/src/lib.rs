//! Offline marker-trait subset of `serde`.
//!
//! This workspace annotates its data types with
//! `#[derive(Serialize, Deserialize)]` to stay source-compatible with
//! upstream serde, but nothing serializes through serde at runtime (all
//! output formats — the wire protocol, SDF files, CSV/JSON reports —
//! are hand-encoded). Since the container has no crates.io access, the
//! traits are vendored as blanket-implemented markers and the derives
//! expand to nothing. See `vendor/README.md`.

/// Marker standing in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
