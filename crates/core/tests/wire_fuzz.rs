//! Wire-protocol robustness: arbitrary bytes must decode to an error,
//! never panic or loop; valid messages roundtrip through real frames.

use proptest::prelude::*;
use simfs_core::dv::FailCode;
use simfs_core::wire::{
    read_frame, write_frame, ClientKind, FrameBatch, FrameReader, Membership, Request, Response,
};
use std::io::Read;

/// A reader delivering at most `chunk` bytes per `read` call: simulates
/// partial/split-frame TCP delivery.
struct Chunked {
    data: Vec<u8>,
    pos: usize,
    chunk: usize,
}

impl Read for Chunked {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.chunk.min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        (
            "[a-z0-9-]{0,24}",
            any::<bool>(),
            any::<u64>(),
            (any::<bool>(), any::<u32>(), any::<u32>(), any::<u64>()),
            (any::<bool>(), any::<u64>()),
        )
            .prop_map(
                |(context, analysis, sim_id, (clustered, index, size, steps_hash), epoch)| {
                    let epoch = epoch.0.then_some(epoch.1);
                    Request::Hello {
                        kind: if analysis {
                            ClientKind::Analysis
                        } else {
                            ClientKind::Simulator { sim_id }
                        },
                        context,
                        membership: clustered.then_some(Membership {
                            index,
                            size,
                            steps_hash,
                        }),
                        epoch,
                    }
                }
            ),
        (
            any::<u64>(),
            prop::collection::vec((any::<u64>(), any::<u64>(), any::<bool>()), 0..20),
        )
            .prop_map(|(dropped, records)| Request::AccessDigest { dropped, records }),
        (any::<u64>(), prop::collection::vec(any::<u64>(), 0..20))
            .prop_map(|(req_id, keys)| Request::Acquire { req_id, keys }),
        any::<u64>().prop_map(|key| Request::Release { key }),
        (any::<u64>(), any::<u64>()).prop_map(|(req_id, key)| Request::Bitrep { req_id, key }),
        (any::<u64>(), any::<u64>()).prop_map(|(key, size)| Request::FileProduced { key, size }),
        Just(Request::SimStarted),
        Just(Request::SimFinished),
        any::<u64>().prop_map(|req_id| Request::Status { req_id }),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            prop::collection::vec(any::<u64>(), 0..20),
        )
            .prop_map(|(req_id, prior_client, prior_epoch, keys)| Request::Reassert {
                req_id,
                prior_client,
                prior_epoch,
                keys,
            }),
        (
            any::<u64>(),
            any::<u32>(),
            any::<u64>(),
            prop::collection::vec(any::<u64>(), 0..20),
        )
            .prop_map(|(req_id, dead_member, origin_epoch, keys)| Request::TakeoverAcquire {
                req_id,
                dead_member,
                origin_epoch,
                keys,
            }),
        (
            any::<u64>(),
            any::<u32>(),
            prop::collection::vec(any::<u64>(), 0..20),
        )
            .prop_map(|(req_id, dead_member, keys)| Request::HandBack {
                req_id,
                dead_member,
                keys,
            }),
        Just(Request::Bye),
    ]
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        (any::<u64>(), any::<u64>())
            .prop_map(|(client_id, epoch)| Response::HelloOk { client_id, epoch }),
        (any::<u64>(), any::<u64>()).prop_map(|(req_id, key)| Response::Ready { req_id, key }),
        (
            any::<u64>(),
            any::<u64>(),
            prop::sample::select(vec![
                FailCode::Retriable,
                FailCode::Poisoned,
                FailCode::HangKilled,
                FailCode::CorruptOutput,
                FailCode::Other,
            ]),
            "[ -~]{0,40}",
        )
            .prop_map(|(req_id, key, code, reason)| Response::Failed {
                req_id,
                key,
                code,
                reason,
            }),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(req_id, key, est_wait_ms)| {
            Response::Queued {
                req_id,
                key,
                est_wait_ms,
            }
        }),
        (any::<u64>(), any::<u64>(), any::<bool>(), any::<bool>()).prop_map(
            |(req_id, key, matches, known)| Response::BitrepResult {
                req_id,
                key,
                matches,
                known,
            }
        ),
        "[ -~]{0,40}".prop_map(|message| Response::Error { message }),
        (
            any::<u64>(),
            any::<u64>(),
            prop::collection::vec(any::<u64>(), 0..10),
            prop::collection::vec((any::<u64>(), "[ -~]{0,20}"), 0..10),
        )
            .prop_map(|(req_id, epoch, restored, gone)| Response::Reasserted {
                req_id,
                epoch,
                restored,
                gone,
            }),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>())
            .prop_map(|(req_id, hits, misses, restarts, produced_steps, active_sims)| {
                Response::StatusInfo {
                    req_id,
                    hits,
                    misses,
                    restarts,
                    produced_steps,
                    active_sims,
                }
            }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(req_id, released)| Response::HandedBack { req_id, released }),
    ]
}

proptest! {
    /// Every request survives encode/decode.
    #[test]
    fn requests_roundtrip(req in arb_request()) {
        let decoded = Request::decode(&req.encode()).unwrap();
        prop_assert_eq!(req, decoded);
    }

    /// Every response survives encode/decode.
    #[test]
    fn responses_roundtrip(resp in arb_response()) {
        let decoded = Response::decode(&resp.encode()).unwrap();
        prop_assert_eq!(resp, decoded);
    }

    /// Arbitrary byte soup never panics the decoders.
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
    }

    /// Truncations of valid encodings are detected as errors, not
    /// misparsed as different messages.
    #[test]
    fn truncations_error(req in arb_request(), cut in any::<prop::sample::Index>()) {
        let encoded = req.encode();
        prop_assume!(encoded.len() > 1);
        let cut = 1 + cut.index(encoded.len() - 1);
        if cut < encoded.len() {
            prop_assert!(Request::decode(&encoded[..cut]).is_err());
        }
    }

    /// Frame streams of several messages roundtrip over a byte channel.
    #[test]
    fn frame_streams_roundtrip(reqs in prop::collection::vec(arb_request(), 0..10)) {
        let mut wire_bytes = Vec::new();
        for req in &reqs {
            write_frame(&mut wire_bytes, &req.encode()).unwrap();
        }
        let mut cursor = &wire_bytes[..];
        let mut decoded = Vec::new();
        while let Some(body) = read_frame(&mut cursor).unwrap() {
            decoded.push(Request::decode(&body).unwrap());
        }
        prop_assert_eq!(decoded, reqs);
    }

    /// The coalescing batch encoder is bit-compatible with
    /// frame-at-a-time `write_frame` and decodes to the same response
    /// sequence.
    #[test]
    fn batched_responses_match_frame_at_a_time(
        resps in prop::collection::vec(arb_response(), 0..20),
    ) {
        let mut batch = FrameBatch::new();
        let mut reference = Vec::new();
        for r in &resps {
            batch.push_response(r);
            write_frame(&mut reference, &r.encode()).unwrap();
        }
        prop_assert_eq!(batch.as_bytes(), &reference[..]);

        let mut cursor = batch.as_bytes();
        let mut decoded = Vec::new();
        while let Some(body) = read_frame(&mut cursor).unwrap() {
            decoded.push(Response::decode(&body).unwrap());
        }
        prop_assert_eq!(decoded, resps);
    }

    /// Ditto for requests (simulator-side batching).
    #[test]
    fn batched_requests_match_frame_at_a_time(
        reqs in prop::collection::vec(arb_request(), 0..20),
    ) {
        let mut batch = FrameBatch::new();
        let mut reference = Vec::new();
        for r in &reqs {
            batch.push_request(r);
            write_frame(&mut reference, &r.encode()).unwrap();
        }
        prop_assert_eq!(batch.as_bytes(), &reference[..]);
    }

    /// A buffered reader over a coalesced batch recovers every frame
    /// even when the transport splits delivery at arbitrary points
    /// (including mid-length-prefix and mid-body).
    #[test]
    fn frame_reader_survives_split_delivery(
        resps in prop::collection::vec(arb_response(), 1..20),
        chunk in 1usize..64,
    ) {
        let mut batch = FrameBatch::new();
        for r in &resps {
            batch.push_response(r);
        }
        let mut reader = FrameReader::new(Chunked {
            data: batch.as_bytes().to_vec(),
            pos: 0,
            chunk,
        });
        let mut decoded = Vec::new();
        while let Some(body) = reader.read_frame().unwrap() {
            decoded.push(Response::decode(&body).unwrap());
        }
        prop_assert_eq!(decoded, resps);
    }

    /// A batch truncated mid-frame errors out instead of yielding a
    /// phantom frame.
    #[test]
    fn frame_reader_rejects_truncated_tail(
        resps in prop::collection::vec(arb_response(), 1..8),
        cut in any::<prop::sample::Index>(),
    ) {
        let mut batch = FrameBatch::new();
        for r in &resps {
            batch.push_response(r);
        }
        let bytes = batch.as_bytes();
        prop_assume!(bytes.len() > 1);
        let cut = 1 + cut.index(bytes.len() - 1);
        prop_assume!(cut < bytes.len());
        // A cut exactly on a frame boundary is a clean EOF, not a
        // truncation.
        let mut boundaries = Vec::new();
        let mut at = 0usize;
        let mut cursor = bytes;
        while let Some(body) = read_frame(&mut cursor).unwrap() {
            at += 4 + body.len();
            boundaries.push(at);
        }
        prop_assume!(!boundaries.contains(&cut));
        let mut reader = FrameReader::new(Chunked {
            data: bytes[..cut].to_vec(),
            pos: 0,
            chunk: 7,
        });
        let mut result = Ok(());
        loop {
            match reader.read_frame() {
                Ok(Some(_)) => continue,
                Ok(None) => break,
                Err(e) => { result = Err(e); break; }
            }
        }
        prop_assert!(result.is_err(), "truncated batch must error");
    }
}

/// The wire-tag registry, exercised by name: one canonical value per
/// frame kind, each asserted to encode under exactly its registered tag
/// byte and to roundtrip. simlint's wire check requires every `tag::`
/// constant to appear in this file, so adding a frame without coverage
/// here fails `cargo run -p simlint`.
mod tag_registry {
    use super::*;
    use simfs_core::wire::tag;

    #[test]
    fn every_request_tag_is_exercised_by_name() {
        let cases: Vec<(u8, Request)> = vec![
            (
                tag::REQ_HELLO,
                Request::Hello {
                    kind: ClientKind::Analysis,
                    context: "ctx".into(),
                    membership: None,
                    epoch: None,
                },
            ),
            (tag::REQ_ACQUIRE, Request::Acquire { req_id: 1, keys: vec![2, 3] }),
            (tag::REQ_RELEASE, Request::Release { key: 4 }),
            (tag::REQ_BITREP, Request::Bitrep { req_id: 5, key: 6 }),
            (tag::REQ_FILE_PRODUCED, Request::FileProduced { key: 7, size: 8 }),
            (tag::REQ_SIM_STARTED, Request::SimStarted),
            (tag::REQ_SIM_FINISHED, Request::SimFinished),
            (tag::REQ_BYE, Request::Bye),
            (tag::REQ_STATUS, Request::Status { req_id: 9 }),
            (
                tag::REQ_ACCESS_DIGEST,
                Request::AccessDigest { dropped: 1, records: vec![(2, 3, true)] },
            ),
            (
                tag::REQ_REASSERT,
                Request::Reassert { req_id: 1, prior_client: 2, prior_epoch: 3, keys: vec![4] },
            ),
            (
                tag::REQ_TAKEOVER_ACQUIRE,
                Request::TakeoverAcquire {
                    req_id: 1,
                    dead_member: 2,
                    origin_epoch: 3,
                    keys: vec![4],
                },
            ),
            (
                tag::REQ_HAND_BACK,
                Request::HandBack { req_id: 1, dead_member: 2, keys: vec![3] },
            ),
        ];
        let mut seen = std::collections::HashSet::new();
        for (tag_byte, req) in cases {
            assert!(seen.insert(tag_byte), "duplicate request tag {tag_byte}");
            let body = req.encode();
            assert_eq!(body[0], tag_byte, "wrong tag byte for {req:?}");
            assert_eq!(Request::decode(&body).unwrap(), req);
        }
    }

    #[test]
    fn every_response_tag_is_exercised_by_name() {
        let cases: Vec<(u8, Response)> = vec![
            (tag::RESP_HELLO_OK, Response::HelloOk { client_id: 1, epoch: 2 }),
            (tag::RESP_READY, Response::Ready { req_id: 1, key: 2 }),
            (
                tag::RESP_FAILED,
                Response::Failed {
                    req_id: 1,
                    key: 2,
                    code: FailCode::Retriable,
                    reason: "r".into(),
                },
            ),
            (tag::RESP_QUEUED, Response::Queued { req_id: 1, key: 2, est_wait_ms: 3 }),
            (
                tag::RESP_BITREP_RESULT,
                Response::BitrepResult { req_id: 1, key: 2, matches: true, known: false },
            ),
            (tag::RESP_ERROR, Response::Error { message: "m".into() }),
            (
                tag::RESP_STATUS_INFO,
                Response::StatusInfo {
                    req_id: 1,
                    hits: 2,
                    misses: 3,
                    restarts: 4,
                    produced_steps: 5,
                    active_sims: 6,
                },
            ),
            (
                tag::RESP_REASSERTED,
                Response::Reasserted {
                    req_id: 1,
                    epoch: 2,
                    restored: vec![3],
                    gone: vec![(4, "g".into())],
                },
            ),
            (tag::RESP_HANDED_BACK, Response::HandedBack { req_id: 1, released: 2 }),
        ];
        let mut seen = std::collections::HashSet::new();
        for (tag_byte, resp) in cases {
            assert!(seen.insert(tag_byte), "duplicate response tag {tag_byte}");
            let body = resp.encode();
            assert_eq!(body[0], tag_byte, "wrong tag byte for {resp:?}");
            assert_eq!(Response::decode(&body).unwrap(), resp);
        }
    }
}
