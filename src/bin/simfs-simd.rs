//! `simfs-simd` — the SimFS simulator daemon binary.
//!
//! This is the process the DV launches to serve a re-simulation job
//! (§III-B): it loads the nearest restart file, steps the simulation
//! kernel forward, publishes output steps into the context's storage
//! area, and notifies the DV over TCP as DVLib would by intercepting
//! the simulator's create/close calls (Fig. 4 steps 3–5).
//!
//! Modes:
//!
//! * **re-simulation** (launched by the DV): range and pacing from the
//!   command line; DV coordinates via `SIMFS_DV_ADDR`/`SIMFS_SIM_ID`
//!   environment variables.
//! * **initial simulation** (`--init`): runs the whole timeline once,
//!   producing every restart file plus the `SIMFS_Bitrep` checksum
//!   database — the "black files" of Fig. 2. Output steps are *not*
//!   kept (that is the whole point of SimFS).
//!
//! ```text
//! simfs-simd --sim heat2d --dd 5 --dr 60 --seed 7 \
//!            --start-key 13 --stop-key 24 [--tau-ms 50] [--alpha-ms 200]
//! simfs-simd --sim heat2d --dd 5 --dr 60 --seed 7 --init --timesteps 600 \
//!            --data-dir /path/to/area
//! ```

use simfs_core::client::SimulatorSession;
use simfs_core::server::env_keys;
use simstore::{checksum_db, Dataset, StorageArea};
use simulators::{build_sim, RestartableSim, SimKind};
use std::collections::HashMap;
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    sim: SimKind,
    dd: u64,
    dr: u64,
    seed: u64,
    start_key: u64,
    stop_key: u64,
    tau_ms: u64,
    alpha_ms: u64,
    init: bool,
    timesteps: u64,
    data_dir: Option<String>,
    nodes: u32,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        sim: SimKind::Synthetic,
        dd: 1,
        dr: 4,
        seed: 0,
        start_key: 0,
        stop_key: 0,
        tau_ms: 0,
        alpha_ms: 0,
        init: false,
        timesteps: 0,
        data_dir: None,
        nodes: 1,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("missing value for {}", argv[*i - 1]))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--sim" => {
                let name = value(&mut i)?;
                args.sim = SimKind::from_name(&name)
                    .ok_or_else(|| format!("unknown simulator {name:?}"))?;
            }
            "--dd" => args.dd = value(&mut i)?.parse().map_err(|e| format!("--dd: {e}"))?,
            "--dr" => args.dr = value(&mut i)?.parse().map_err(|e| format!("--dr: {e}"))?,
            "--seed" => args.seed = value(&mut i)?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--start-key" => {
                args.start_key = value(&mut i)?.parse().map_err(|e| format!("--start-key: {e}"))?
            }
            "--stop-key" => {
                args.stop_key = value(&mut i)?.parse().map_err(|e| format!("--stop-key: {e}"))?
            }
            "--tau-ms" => args.tau_ms = value(&mut i)?.parse().map_err(|e| format!("--tau-ms: {e}"))?,
            "--alpha-ms" => {
                args.alpha_ms = value(&mut i)?.parse().map_err(|e| format!("--alpha-ms: {e}"))?
            }
            "--nodes" => args.nodes = value(&mut i)?.parse().map_err(|e| format!("--nodes: {e}"))?,
            "--init" => args.init = true,
            "--timesteps" => {
                args.timesteps = value(&mut i)?.parse().map_err(|e| format!("--timesteps: {e}"))?
            }
            "--data-dir" => args.data_dir = Some(value(&mut i)?),
            other => return Err(format!("unknown argument {other:?}")),
        }
        i += 1;
    }
    if args.dd == 0 || args.dr == 0 || !args.dr.is_multiple_of(args.dd) {
        return Err("require 0 < --dd and --dr a multiple of --dd".to_string());
    }
    Ok(args)
}

fn output_name(key: u64) -> String {
    format!("out-{key:06}.sdf")
}

fn restart_name(j: u64) -> String {
    format!("restart-{j:06}.sdf")
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("simfs-simd: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let data_dir = args
        .data_dir
        .clone()
        .or_else(|| std::env::var(env_keys::DATA_DIR).ok())
        .ok_or("no data dir: pass --data-dir or set SIMFS_DATA_DIR")?;
    let area = StorageArea::create(&data_dir, u64::MAX).map_err(|e| e.to_string())?;

    if args.init {
        initial_simulation(&args, &area)
    } else {
        resimulation(&args, &area)
    }
}

/// The initial run (Fig. 2, top): writes every restart step and records
/// output checksums, discarding the output data itself.
fn initial_simulation(args: &Args, area: &StorageArea) -> Result<(), String> {
    if args.timesteps == 0 {
        return Err("--init requires --timesteps".to_string());
    }
    let mut sim = build_sim(args.sim, args.seed);
    let mut checksums: HashMap<u64, u64> = HashMap::new();

    // Restart 0 is the initial condition.
    publish_restart(area, &restart_name(0), &sim.save_restart())?;
    while sim.timestep() < args.timesteps {
        sim.step();
        let t = sim.timestep();
        if t.is_multiple_of(args.dd) {
            let key = t / args.dd;
            let bytes = sim.output().encode();
            checksums.insert(key, simstore::fnv1a64(&bytes));
        }
        if t.is_multiple_of(args.dr) {
            publish_restart(area, &restart_name(t / args.dr), &sim.save_restart())?;
        }
    }
    let db_path = area.root().join(checksum_db::DB_FILENAME);
    checksum_db::save(&db_path, &checksums).map_err(|e| e.to_string())?;
    println!(
        "initial simulation complete: {} timesteps, {} restarts, {} checksums",
        args.timesteps,
        args.timesteps / args.dr,
        checksums.len()
    );
    Ok(())
}

fn publish_restart(area: &StorageArea, name: &str, ds: &Dataset) -> Result<(), String> {
    area.publish(name, &ds.encode()).map_err(|e| e.to_string())?;
    Ok(())
}

/// A re-simulation serving output steps `start_key ..= stop_key`.
fn resimulation(args: &Args, area: &StorageArea) -> Result<(), String> {
    if args.start_key == 0 || args.stop_key < args.start_key {
        return Err("need 1 <= --start-key <= --stop-key".to_string());
    }
    let b = args.dr / args.dd;
    // §II-A: restart to load. A boundary-only dump (start == stop on a
    // boundary) loads the co-located restart; otherwise the previous one.
    let restart_j = if args.start_key.is_multiple_of(b) && args.start_key == args.stop_key {
        args.start_key / b
    } else {
        (args.start_key - 1) / b
    };

    let mut sim = build_sim(args.sim, args.seed);
    let restart = area
        .read(&restart_name(restart_j))
        .map_err(|e| format!("restart {restart_j} unavailable: {e}"))?;
    let ds = Dataset::decode(&restart).map_err(|e| e.to_string())?;
    sim.load_restart(&ds).map_err(|e| e.to_string())?;

    // Optional DV coordination (absent when run standalone).
    let mut session = match std::env::var(env_keys::DV_ADDR) {
        Ok(addr) => {
            let sim_id: u64 = std::env::var(env_keys::SIM_ID)
                .ok()
                .and_then(|s| s.parse().ok())
                .ok_or("SIMFS_SIM_ID missing or invalid")?;
            let context = std::env::var(env_keys::CONTEXT).unwrap_or_default();
            Some(
                SimulatorSession::connect(&addr, &context, sim_id)
                    .map_err(|e| format!("cannot reach DV at {addr}: {e}"))?,
            )
        }
        Err(_) => None,
    };

    // Restart latency (model-scale pacing for experiments/examples).
    if args.alpha_ms > 0 {
        std::thread::sleep(Duration::from_millis(args.alpha_ms));
    }
    if let Some(s) = session.as_mut() {
        s.started().map_err(|e| e.to_string())?;
    }

    let stop_timestep = args.stop_key * args.dd;
    let mut produce = |key: u64, sim: &mut Box<dyn RestartableSim + Send>| -> Result<(), String> {
        if args.tau_ms > 0 {
            std::thread::sleep(Duration::from_millis(args.tau_ms));
        }
        let bytes = sim.output().encode();
        let size = area
            .publish(&output_name(key), &bytes)
            .map_err(|e| e.to_string())?;
        if let Some(s) = session.as_mut() {
            s.file_produced(key, size).map_err(|e| e.to_string())?;
        }
        Ok(())
    };

    // Boundary dump: the restart *is* the requested state.
    if sim.timestep() == args.start_key * args.dd && args.start_key == args.stop_key {
        produce(args.start_key, &mut sim)?;
    } else {
        while sim.timestep() < stop_timestep {
            sim.step();
            let t = sim.timestep();
            if t.is_multiple_of(args.dd) {
                let key = t / args.dd;
                if key >= args.start_key {
                    produce(key, &mut sim)?;
                }
            }
        }
    }

    if let Some(s) = session {
        s.finished().map_err(|e| e.to_string())?;
    }
    Ok(())
}
