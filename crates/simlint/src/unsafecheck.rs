//! Unsafe hygiene: every `unsafe` keyword must be justified by a
//! `// SAFETY:` comment immediately above it (or on the same line).
//!
//! The FFI surface is deliberately tiny (`crates/core/src/sys.rs`
//! hand-rolls epoll/eventfd), and each block's correctness argument —
//! which invariants the raw call relies on, who owns the fd — belongs
//! next to the block, not in a commit message.

use crate::lexer;
use crate::Finding;

/// How many lines above an `unsafe` token a SAFETY comment may sit
/// (allows a multi-line justification ending just above the block).
const SAFETY_WINDOW: u32 = 4;

pub fn check_source(file_label: &str, src: &str) -> Vec<Finding> {
    let (toks, comments) = lexer::lex(src);
    let mut findings = Vec::new();
    for t in &toks {
        if !lexer::is_ident(&t.tok, "unsafe") {
            continue;
        }
        let justified = comments.iter().any(|c| {
            c.text.contains("SAFETY")
                && c.end_line <= t.line
                && c.end_line + SAFETY_WINDOW >= t.line
        });
        if !justified {
            findings.push(Finding::new(
                "unsafe-hygiene",
                file_label,
                t.line as usize,
                "unsafe block without a `// SAFETY:` comment justifying it".to_string(),
            ));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn safety_comment_satisfies() {
        let src = "// SAFETY: fd is owned by us.\nlet x = unsafe { f() };\n";
        assert!(check_source("t.rs", src).is_empty());
    }

    #[test]
    fn unsafe_in_string_or_comment_ignored() {
        let src = "let s = \"unsafe\"; // unsafe mention\n";
        assert!(check_source("t.rs", src).is_empty());
    }
}
