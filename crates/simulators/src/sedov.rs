//! 2-D Sedov blast wave on a finite-volume Euler solver: the FLASH
//! stand-in (§VI: "we virtualize a Sedov simulation which involves the
//! evolution of a blast wave from an initial pressure perturbation in an
//! otherwise homogeneous medium").
//!
//! Compressible Euler equations, ideal gas (γ = 1.4), first-order
//! Godunov-type scheme with Rusanov (local Lax–Friedrichs) fluxes and
//! dimensional splitting on a periodic grid. Rusanov is diffusive but
//! unconditionally robust at a fixed CFL — the right trade-off for a
//! deterministic substrate whose job is to exercise checkpoint/restart
//! with genuinely evolving multi-field state.
//!
//! The timestep is frozen at construction from the initial wave speeds
//! (CFL 0.25 against the post-ignition state) and stored in the restart
//! file, so a restarted run retraces the identical trajectory bitwise.

use crate::{RestartableSim, SimError};
use simstore::{Data, Dataset};

const NAME: &str = "sedov";
const GAMMA: f64 = 1.4;

/// Conserved variables per cell: density, x/y momentum, total energy.
#[derive(Clone, Debug)]
struct State {
    rho: Vec<f64>,
    mx: Vec<f64>,
    my: Vec<f64>,
    e: Vec<f64>,
}

impl State {
    fn zeros(n: usize) -> State {
        State {
            rho: vec![0.0; n],
            mx: vec![0.0; n],
            my: vec![0.0; n],
            e: vec![0.0; n],
        }
    }
}

/// Sedov blast-wave simulator on an `nx × ny` periodic grid.
#[derive(Clone, Debug)]
pub struct Sedov {
    nx: usize,
    ny: usize,
    dx: f64,
    dt: f64,
    timestep: u64,
    state: State,
    scratch: State,
}

impl Sedov {
    /// Initializes the ambient medium (ρ=1, p=1e-1) with a strong
    /// pressure spike in the central 2×2 cells.
    ///
    /// # Panics
    /// Panics if the grid is smaller than 8×8.
    pub fn new(nx: usize, ny: usize) -> Self {
        assert!(nx >= 8 && ny >= 8, "grid too small: {nx}x{ny}");
        let n = nx * ny;
        let dx = 1.0 / nx as f64;
        let mut state = State::zeros(n);
        let ambient_p = 0.1;
        let blast_p = 100.0;
        for j in 0..ny {
            for i in 0..nx {
                let k = j * nx + i;
                state.rho[k] = 1.0;
                state.mx[k] = 0.0;
                state.my[k] = 0.0;
                let center = (i == nx / 2 || i == nx / 2 - 1) && (j == ny / 2 || j == ny / 2 - 1);
                let p = if center { blast_p } else { ambient_p };
                state.e[k] = p / (GAMMA - 1.0);
            }
        }
        // Fixed dt from the worst-case initial signal speed.
        let cs_max = (GAMMA * blast_p / 1.0_f64).sqrt();
        let dt = 0.25 * dx / cs_max;
        Sedov {
            nx,
            ny,
            dx,
            dt,
            timestep: 0,
            scratch: State::zeros(n),
            state,
        }
    }

    /// Grid dimensions `(nx, ny)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Total mass (conserved by the scheme; physics check in tests).
    pub fn total_mass(&self) -> f64 {
        self.state.rho.iter().sum::<f64>() * self.dx * self.dx
    }

    /// Total energy (conserved on a periodic domain).
    pub fn total_energy(&self) -> f64 {
        self.state.e.iter().sum::<f64>() * self.dx * self.dx
    }

    /// Density field view.
    pub fn density(&self) -> &[f64] {
        &self.state.rho
    }

    #[inline]
    fn pressure(rho: f64, mx: f64, my: f64, e: f64) -> f64 {
        let kinetic = 0.5 * (mx * mx + my * my) / rho;
        ((GAMMA - 1.0) * (e - kinetic)).max(1e-12)
    }

    /// Rusanov numerical flux between cells L and R along axis `ax`
    /// (0 = x, 1 = y). Returns fluxes for (rho, mx, my, e).
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn rusanov(
        ax: usize,
        rho_l: f64,
        mx_l: f64,
        my_l: f64,
        e_l: f64,
        rho_r: f64,
        mx_r: f64,
        my_r: f64,
        e_r: f64,
    ) -> (f64, f64, f64, f64) {
        let p_l = Self::pressure(rho_l, mx_l, my_l, e_l);
        let p_r = Self::pressure(rho_r, mx_r, my_r, e_r);
        let (un_l, un_r) = if ax == 0 {
            (mx_l / rho_l, mx_r / rho_r)
        } else {
            (my_l / rho_l, my_r / rho_r)
        };
        // Physical fluxes F(U) along the axis.
        let f_l = if ax == 0 {
            (
                mx_l,
                mx_l * un_l + p_l,
                my_l * un_l,
                (e_l + p_l) * un_l,
            )
        } else {
            (
                my_l,
                mx_l * un_l,
                my_l * un_l + p_l,
                (e_l + p_l) * un_l,
            )
        };
        let f_r = if ax == 0 {
            (
                mx_r,
                mx_r * un_r + p_r,
                my_r * un_r,
                (e_r + p_r) * un_r,
            )
        } else {
            (
                my_r,
                mx_r * un_r,
                my_r * un_r + p_r,
                (e_r + p_r) * un_r,
            )
        };
        let a_l = un_l.abs() + (GAMMA * p_l / rho_l).sqrt();
        let a_r = un_r.abs() + (GAMMA * p_r / rho_r).sqrt();
        let s = a_l.max(a_r);
        (
            0.5 * (f_l.0 + f_r.0) - 0.5 * s * (rho_r - rho_l),
            0.5 * (f_l.1 + f_r.1) - 0.5 * s * (mx_r - mx_l),
            0.5 * (f_l.2 + f_r.2) - 0.5 * s * (my_r - my_l),
            0.5 * (f_l.3 + f_r.3) - 0.5 * s * (e_r - e_l),
        )
    }

    fn sweep(&mut self, ax: usize) {
        let (nx, ny) = (self.nx, self.ny);
        let lam = self.dt / self.dx;
        let s = &self.state;
        let out = &mut self.scratch;
        for j in 0..ny {
            for i in 0..nx {
                let k = j * nx + i;
                let (km, kp) = if ax == 0 {
                    let im = if i == 0 { nx - 1 } else { i - 1 };
                    let ip = if i == nx - 1 { 0 } else { i + 1 };
                    (j * nx + im, j * nx + ip)
                } else {
                    let jm = if j == 0 { ny - 1 } else { j - 1 };
                    let jp = if j == ny - 1 { 0 } else { j + 1 };
                    (jm * nx + i, jp * nx + i)
                };
                let f_minus = Self::rusanov(
                    ax, s.rho[km], s.mx[km], s.my[km], s.e[km], s.rho[k], s.mx[k], s.my[k],
                    s.e[k],
                );
                let f_plus = Self::rusanov(
                    ax, s.rho[k], s.mx[k], s.my[k], s.e[k], s.rho[kp], s.mx[kp], s.my[kp],
                    s.e[kp],
                );
                out.rho[k] = s.rho[k] - lam * (f_plus.0 - f_minus.0);
                out.mx[k] = s.mx[k] - lam * (f_plus.1 - f_minus.1);
                out.my[k] = s.my[k] - lam * (f_plus.2 - f_minus.2);
                out.e[k] = s.e[k] - lam * (f_plus.3 - f_minus.3);
            }
        }
        std::mem::swap(&mut self.state, &mut self.scratch);
    }
}

impl RestartableSim for Sedov {
    fn name(&self) -> &'static str {
        NAME
    }

    fn step(&mut self) {
        // Dimensional (Strang-lite) splitting: x sweep then y sweep.
        self.sweep(0);
        self.sweep(1);
        self.timestep += 1;
    }

    fn timestep(&self) -> u64 {
        self.timestep
    }

    fn save_restart(&self) -> Dataset {
        let mut ds = Dataset::new(self.timestep, self.timestep as f64 * self.dt);
        ds.set_attr("simulator", NAME);
        ds.set_attr("nx", self.nx.to_string());
        ds.set_attr("ny", self.ny.to_string());
        ds.set_attr("dt_bits", self.dt.to_bits().to_string());
        let dims = vec![self.ny as u64, self.nx as u64];
        ds.add_var("rho", dims.clone(), Data::F64(self.state.rho.clone()))
            .expect("restart rho");
        ds.add_var("mx", dims.clone(), Data::F64(self.state.mx.clone()))
            .expect("restart mx");
        ds.add_var("my", dims.clone(), Data::F64(self.state.my.clone()))
            .expect("restart my");
        ds.add_var("e", dims, Data::F64(self.state.e.clone()))
            .expect("restart e");
        ds
    }

    fn load_restart(&mut self, restart: &Dataset) -> Result<(), SimError> {
        if restart.attr("simulator") != Some(NAME) {
            return Err(SimError::RestartMismatch(format!(
                "expected {NAME}, found {:?}",
                restart.attr("simulator")
            )));
        }
        let nx: usize = restart
            .attr("nx")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| SimError::RestartMismatch("missing nx".into()))?;
        let ny: usize = restart
            .attr("ny")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| SimError::RestartMismatch("missing ny".into()))?;
        let dt_bits: u64 = restart
            .attr("dt_bits")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| SimError::RestartMismatch("missing dt".into()))?;
        let n = nx * ny;
        let mut state = State::zeros(n);
        for (name, dst) in [
            ("rho", &mut state.rho),
            ("mx", &mut state.mx),
            ("my", &mut state.my),
            ("e", &mut state.e),
        ] {
            let field = restart
                .var(name)
                .and_then(|v| v.data.as_f64())
                .ok_or_else(|| SimError::RestartMismatch(format!("missing field {name}")))?;
            if field.len() != n {
                return Err(SimError::RestartMismatch(format!(
                    "field {name} size {} != {nx}x{ny}",
                    field.len()
                )));
            }
            dst.copy_from_slice(field);
        }
        self.nx = nx;
        self.ny = ny;
        self.dx = 1.0 / nx as f64;
        self.dt = f64::from_bits(dt_bits);
        self.timestep = restart.step_index;
        self.state = state;
        self.scratch = State::zeros(n);
        Ok(())
    }

    fn output(&self) -> Dataset {
        // FLASH-style analysis output: density plus the velocity
        // magnitude field the paper's analysis computes statistics on.
        let mut ds = Dataset::new(self.timestep, self.timestep as f64 * self.dt);
        ds.set_attr("simulator", NAME);
        let dims = vec![self.ny as u64, self.nx as u64];
        let vel: Vec<f64> = (0..self.nx * self.ny)
            .map(|k| {
                let r = self.state.rho[k];
                ((self.state.mx[k] / r).powi(2) + (self.state.my[k] / r).powi(2)).sqrt()
            })
            .collect();
        ds.add_var("rho", dims.clone(), Data::F64(self.state.rho.clone()))
            .expect("output rho");
        ds.add_var("vel", dims, Data::F64(vel)).expect("output vel");
        ds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blast_wave_expands() {
        let mut sim = Sedov::new(32, 32);
        for _ in 0..100 {
            sim.step();
        }
        // Material has been pushed outward: density near the center drops
        // below ambient, and some ring cell exceeds ambient.
        let (nx, ny) = sim.shape();
        let center = sim.density()[(ny / 2) * nx + nx / 2];
        let max = sim.density().iter().cloned().fold(f64::MIN, f64::max);
        assert!(center < 1.0, "center density {center} should rarefy");
        assert!(max > 1.0, "shock ring should compress above ambient");
    }

    #[test]
    fn mass_and_energy_conserved() {
        let mut sim = Sedov::new(24, 24);
        let m0 = sim.total_mass();
        let e0 = sim.total_energy();
        for _ in 0..200 {
            sim.step();
        }
        assert!(((sim.total_mass() - m0) / m0).abs() < 1e-10);
        assert!(((sim.total_energy() - e0) / e0).abs() < 1e-10);
    }

    #[test]
    fn fields_stay_finite_and_positive() {
        let mut sim = Sedov::new(16, 16);
        for _ in 0..500 {
            sim.step();
        }
        assert!(sim.state.rho.iter().all(|&x| x.is_finite() && x > 0.0));
        assert!(sim.state.e.iter().all(|&x| x.is_finite() && x > 0.0));
    }

    #[test]
    fn restart_is_bitwise_exact() {
        let mut sim = Sedov::new(16, 16);
        for _ in 0..50 {
            sim.step();
        }
        let ckpt = sim.save_restart();
        for _ in 0..50 {
            sim.step();
        }
        let expect = sim.output().encode();

        let mut replay = Sedov::new(8, 8);
        replay.load_restart(&ckpt).unwrap();
        for _ in 0..50 {
            replay.step();
        }
        assert_eq!(replay.output().encode(), expect);
    }

    #[test]
    fn symmetry_is_preserved() {
        // The initial condition is symmetric under 180° rotation about
        // the blast center; a deterministic solver must keep it so.
        let mut sim = Sedov::new(16, 16);
        for _ in 0..60 {
            sim.step();
        }
        let (nx, ny) = sim.shape();
        let rho = sim.density();
        // 180° rotation about the blast center at (nx/2-0.5, ny/2-0.5):
        // (i, j) -> (nx-1-i, ny-1-j).
        for j in 0..ny {
            for i in 0..nx {
                let a = rho[j * nx + i];
                let b = rho[(ny - 1 - j) * nx + (nx - 1 - i)];
                assert!(
                    (a - b).abs() < 1e-9,
                    "rotational symmetry broken at ({i},{j}): {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn velocity_output_present() {
        let mut sim = Sedov::new(16, 16);
        for _ in 0..20 {
            sim.step();
        }
        let out = sim.output();
        let vel = out.var("vel").unwrap().data.as_f64().unwrap();
        assert!(vel.iter().any(|&v| v > 0.0), "blast should induce motion");
    }
}
