//! Fig. 15: (a) cost-effectiveness heatmap over the price plane;
//! (b) SimFS cost vs restart-file space; (c) re-simulation time vs
//! space.
//!
//! `cargo run -p simfs-bench --bin fig15_heatmap [--full]`

use simcost::{AZURE, PIZ_DAINT};
use simfs_bench::{costfigs, RunOpts};

fn main() {
    let opts = RunOpts::from_args();
    let resolution = if opts.full { 16 } else { 8 };

    let heat = costfigs::fig15a(&opts, resolution);
    heat.print();
    let path = heat.write_csv(&opts.out_dir, "fig15a_heatmap").expect("write CSV");
    println!("\nCSV: {}", path.display());
    println!(
        "reference points: Azure (c_s={}, c_c={}), Piz Daint (c_s={}, c_c={})",
        AZURE.storage_per_gib_month,
        AZURE.compute_per_node_hour,
        PIZ_DAINT.storage_per_gib_month,
        PIZ_DAINT.compute_per_node_hour
    );

    let (bc, _) = costfigs::fig15bc(&opts);
    bc.print();
    let path = bc.write_csv(&opts.out_dir, "fig15bc_space").expect("write CSV");
    println!("\nCSV: {}", path.display());
}
