//! The DV daemon: TCP front-end of the Data Virtualizer (Fig. 4).
//!
//! One daemon serves one or more *simulation contexts* (§II: "for a
//! given simulation, scientists identify multiple simulation contexts
//! that are made available to the analyses through SimFS"); clients
//! select a context by name in their hello handshake — the protocol
//! twin of the paper's `SIMFS_Init(sim_context, ...)` / environment
//! variable. Analysis clients connect through DVLib
//! ([`crate::client`]); re-simulations are spawned through a
//! [`JobLauncher`] and connect back as simulator clients to report
//! `SimStarted` / `FileProduced` / `SimFinished`.
//!
//! Concurrency model: one coarse lock per context around the DV state
//! plus the client writer map. Every transition (a few map operations)
//! holds the lock briefly; notification writes are small frames into OS
//! socket buffers. This is the classic coordination-daemon shape — the
//! data path (bulk file I/O) never goes through the daemon, only
//! control messages do, exactly as the paper separates control (TCP)
//! from data (parallel file system).

use crate::driver::SimDriver;
use crate::dv::{ClientId, DataVirtualizer, DvAction, DvEvent, SimId};
use crate::model::ContextCfg;
use crate::wire::{self, ClientKind, Request, Response};
use parking_lot::Mutex;
use simbatch::{JobId, JobLauncher, SpawnSpec};
use simkit::SimTime;
use simstore::StorageArea;
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Environment variables passed to launched simulator jobs.
pub mod env_keys {
    /// Daemon address (`host:port`).
    pub const DV_ADDR: &str = "SIMFS_DV_ADDR";
    /// DV-assigned simulation id.
    pub const SIM_ID: &str = "SIMFS_SIM_ID";
    /// Context name.
    pub const CONTEXT: &str = "SIMFS_CONTEXT";
    /// Storage-area directory the simulator writes into.
    pub const DATA_DIR: &str = "SIMFS_DATA_DIR";
}

/// Daemon configuration for one simulation context.
pub struct ServerConfig {
    /// The context (cadences, cache, policy, `s_max`, prefetching).
    pub ctx: ContextCfg,
    /// Simulator driver (naming, job creation, checksums).
    pub driver: Arc<dyn SimDriver>,
    /// Storage area backing the context.
    pub storage: StorageArea,
    /// Job launcher for re-simulations.
    pub launcher: Arc<dyn JobLauncher>,
    /// Recorded checksums of the initial simulation (`SIMFS_Bitrep`
    /// reference data): key → checksum.
    pub checksums: HashMap<u64, u64>,
}

struct CtxState {
    dv: DataVirtualizer,
    /// (client, key) → request ids awaiting Ready/Failed.
    pending: HashMap<(ClientId, u64), Vec<u64>>,
    /// Analysis client writers.
    writers: HashMap<ClientId, TcpStream>,
}

/// Per-context runtime: the DV state machine plus its effectors.
struct CtxRuntime {
    name: String,
    state: Mutex<CtxState>,
    driver: Arc<dyn SimDriver>,
    storage: StorageArea,
    launcher: Arc<dyn JobLauncher>,
    checksums: HashMap<u64, u64>,
}

struct Inner {
    contexts: HashMap<String, Arc<CtxRuntime>>,
    epoch: Instant,
    addr: SocketAddr,
    next_client: AtomicU64,
    shutdown: AtomicBool,
}

impl Inner {
    fn now(&self) -> SimTime {
        SimTime::from_nanos(self.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64)
    }

    /// Routes a hello's context name; an empty name with exactly one
    /// context falls through to it (single-context deployments keep the
    /// pre-multi-context ergonomics).
    fn route(&self, name: &str) -> Option<&Arc<CtxRuntime>> {
        if let Some(ctx) = self.contexts.get(name) {
            return Some(ctx);
        }
        if name.is_empty() && self.contexts.len() == 1 {
            return self.contexts.values().next();
        }
        None
    }
}

impl CtxRuntime {
    fn send(&self, state: &mut CtxState, client: ClientId, resp: &Response) {
        if let Some(stream) = state.writers.get_mut(&client) {
            let _ = wire::write_frame(stream, &resp.encode());
        }
    }

    /// Applies DV actions; launch failures feed back as `SimFailed`
    /// events until quiescence.
    fn apply_actions(&self, inner: &Inner, state: &mut CtxState, mut actions: Vec<DvAction>) {
        while !actions.is_empty() {
            let mut feedback: Vec<DvEvent> = Vec::new();
            for action in std::mem::take(&mut actions) {
                match action {
                    DvAction::NotifyReady { client, key } => {
                        if let Some(reqs) = state.pending.remove(&(client, key)) {
                            for req_id in reqs {
                                self.send(state, client, &Response::Ready { req_id, key });
                            }
                        }
                    }
                    DvAction::NotifyFailed {
                        client,
                        key,
                        reason,
                    } => {
                        if let Some(reqs) = state.pending.remove(&(client, key)) {
                            for req_id in reqs {
                                self.send(
                                    state,
                                    client,
                                    &Response::Failed {
                                        req_id,
                                        key,
                                        reason: reason.clone(),
                                    },
                                );
                            }
                        }
                    }
                    DvAction::Launch {
                        sim, keys, level, ..
                    } => {
                        let spec = self
                            .driver
                            .make_job(*keys.start(), *keys.end(), level)
                            .env(env_keys::DV_ADDR, inner.addr.to_string())
                            .env(env_keys::SIM_ID, sim.to_string())
                            .env(env_keys::CONTEXT, &self.name)
                            .env(
                                env_keys::DATA_DIR,
                                self.storage.root().to_string_lossy().to_string(),
                            );
                        if self.launcher.launch(JobId(sim), &spec).is_err() {
                            feedback.push(DvEvent::SimFailed { sim });
                        }
                    }
                    DvAction::Kill { sim } => {
                        let _ = self.launcher.kill(JobId(sim));
                    }
                    DvAction::Evict { key } => {
                        let name = self.driver.filename_of(key);
                        let _ = self.storage.delete(&name);
                    }
                }
            }
            let now = inner.now();
            for ev in feedback {
                actions.extend(state.dv.handle(now, ev));
            }
        }
    }
}

/// A running DV daemon; dropping it (or calling
/// [`shutdown`](DvServer::shutdown)) stops the accept loop.
pub struct DvServer {
    inner: Arc<Inner>,
}

impl DvServer {
    /// Binds and starts a single-context daemon. Pre-existing files in
    /// the storage area (the initial simulation's output) are primed
    /// into the cache.
    pub fn start(config: ServerConfig, bind: &str) -> io::Result<DvServer> {
        Self::start_multi(vec![config], bind)
    }

    /// Binds and starts a daemon serving several simulation contexts
    /// (§II) on one address; clients route by context name at hello
    /// time.
    ///
    /// # Panics
    /// Panics on duplicate context names — a configuration error.
    pub fn start_multi(configs: Vec<ServerConfig>, bind: &str) -> io::Result<DvServer> {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;

        let mut contexts = HashMap::new();
        let mut prime_work: Vec<(Arc<CtxRuntime>, Vec<u64>)> = Vec::new();
        for config in configs {
            let name = config.ctx.name.clone();
            let mut dv = DataVirtualizer::new(config.ctx);

            // Prime: everything already on disk is cached state.
            let mut evicted = Vec::new();
            for file in config.storage.list()? {
                if let Some(key) = config.driver.key_of(&file) {
                    let size = config.storage.size_of(&file).unwrap_or(0);
                    evicted.extend(dv.prime(key, size));
                }
            }
            let runtime = Arc::new(CtxRuntime {
                name: name.clone(),
                state: Mutex::new(CtxState {
                    dv,
                    pending: HashMap::new(),
                    writers: HashMap::new(),
                }),
                driver: config.driver,
                storage: config.storage,
                launcher: config.launcher,
                checksums: config.checksums,
            });
            prime_work.push((Arc::clone(&runtime), evicted));
            let previous = contexts.insert(name.clone(), runtime);
            assert!(previous.is_none(), "duplicate context name {name:?}");
        }

        let inner = Arc::new(Inner {
            contexts,
            epoch: Instant::now(),
            addr,
            next_client: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
        });

        // Delete whatever the priming evicted (storage shrunk between
        // runs).
        for (runtime, evicted) in prime_work {
            for key in evicted {
                let name = runtime.driver.filename_of(key);
                let _ = runtime.storage.delete(&name);
            }
        }

        let accept_inner = Arc::clone(&inner);
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                if accept_inner.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match conn {
                    Ok(stream) => {
                        let conn_inner = Arc::clone(&accept_inner);
                        std::thread::spawn(move || handle_connection(conn_inner, stream));
                    }
                    Err(_) => break,
                }
            }
        });

        // Reaper: a launched job can die before it ever connects (bad
        // restart file, scheduler rejection). Poll every launcher and
        // translate orphaned exits into SimFailed/SimFinished so waiting
        // analyses get an answer instead of a hang.
        let reap_inner = Arc::clone(&inner);
        std::thread::spawn(move || {
            while !reap_inner.shutdown.load(Ordering::SeqCst) {
                std::thread::sleep(std::time::Duration::from_millis(50));
                for runtime in reap_inner.contexts.values() {
                    let exits = runtime.launcher.reap();
                    if exits.is_empty() {
                        continue;
                    }
                    let mut state = runtime.state.lock();
                    for (job, success) in exits {
                        let now = reap_inner.now();
                        // Unknown sims (already finished via the
                        // protocol) are no-ops inside the DV.
                        let event = if success {
                            DvEvent::SimFinished { sim: job.0 }
                        } else {
                            DvEvent::SimFailed { sim: job.0 }
                        };
                        let actions = state.dv.handle(now, event);
                        runtime.apply_actions(&reap_inner, &mut state, actions);
                    }
                }
            }
        });
        Ok(DvServer { inner })
    }

    /// The bound address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// Statistics snapshot of the only context (single-context
    /// deployments).
    ///
    /// # Panics
    /// Panics if the daemon serves more than one context — use
    /// [`context_stats`](Self::context_stats) then.
    pub fn stats(&self) -> crate::dv::DvStats {
        assert_eq!(
            self.inner.contexts.len(),
            1,
            "multi-context daemon: use context_stats(name)"
        );
        let runtime = self.inner.contexts.values().next().expect("one context");
        runtime.state.lock().dv.stats().clone()
    }

    /// Statistics snapshot of a named context.
    pub fn context_stats(&self, name: &str) -> Option<crate::dv::DvStats> {
        self.inner
            .contexts
            .get(name)
            .map(|rt| rt.state.lock().dv.stats().clone())
    }

    /// The names of the contexts served.
    pub fn context_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.contexts.keys().cloned().collect();
        names.sort();
        names
    }

    /// Stops accepting connections.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.inner.addr);
    }
}

impl Drop for DvServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_connection(inner: Arc<Inner>, mut stream: TcpStream) {
    let hello = match wire::read_frame(&mut stream) {
        Ok(Some(body)) => match Request::decode(&body) {
            Ok(req) => req,
            Err(_) => return,
        },
        _ => return,
    };
    let Request::Hello { kind, context } = hello else {
        let resp = Response::Error {
            message: "expected Hello".to_string(),
        };
        let _ = wire::write_frame(&mut stream, &resp.encode());
        return;
    };
    let Some(runtime) = inner.route(&context).cloned() else {
        let resp = Response::Error {
            message: format!(
                "unknown simulation context {:?} (available: {:?})",
                context,
                {
                    let mut names: Vec<&String> = inner.contexts.keys().collect();
                    names.sort();
                    names
                }
            ),
        };
        let _ = wire::write_frame(&mut stream, &resp.encode());
        return;
    };
    match kind {
        ClientKind::Analysis => analysis_session(inner, runtime, stream),
        ClientKind::Simulator { sim_id } => simulator_session(inner, runtime, stream, sim_id),
    }
}

fn analysis_session(inner: Arc<Inner>, runtime: Arc<CtxRuntime>, mut stream: TcpStream) {
    let client: ClientId = inner.next_client.fetch_add(1, Ordering::SeqCst);
    {
        let mut state = runtime.state.lock();
        match stream.try_clone() {
            Ok(writer) => {
                state.writers.insert(client, writer);
            }
            Err(_) => return,
        }
        runtime.send(&mut state, client, &Response::HelloOk { client_id: client });
    }

    loop {
        let frame = match wire::read_frame(&mut stream) {
            Ok(Some(body)) => body,
            _ => break,
        };
        let req = match Request::decode(&frame) {
            Ok(r) => r,
            Err(_) => break,
        };
        match req {
            Request::Acquire { req_id, keys } => {
                let mut state = runtime.state.lock();
                for key in keys {
                    // Register interest before handling so a concurrent
                    // production cannot race past the notification.
                    state.pending.entry((client, key)).or_default().push(req_id);
                    let now = inner.now();
                    let actions = state.dv.handle(now, DvEvent::Acquire { client, key });
                    runtime.apply_actions(&inner, &mut state, actions);
                    // Still pending? Tell the client it is queued, with
                    // the wait estimate (§III-C).
                    if state.pending.contains_key(&(client, key)) {
                        let est = state
                            .dv
                            .estimate_wait(key)
                            .map_or(0, |d| d.as_nanos() / 1_000_000);
                        runtime.send(
                            &mut state,
                            client,
                            &Response::Queued {
                                req_id,
                                key,
                                est_wait_ms: est,
                            },
                        );
                    }
                }
            }
            Request::Release { key } => {
                let mut state = runtime.state.lock();
                let now = inner.now();
                let actions = state.dv.handle(now, DvEvent::Release { client, key });
                runtime.apply_actions(&inner, &mut state, actions);
            }
            Request::Bitrep { req_id, key } => {
                let name = runtime.driver.filename_of(key);
                let result = runtime.storage.read(&name).ok().map(|bytes| {
                    let sum = runtime.driver.checksum(&bytes);
                    match runtime.checksums.get(&key) {
                        Some(recorded) => (sum == *recorded, true),
                        None => (false, false),
                    }
                });
                let mut state = runtime.state.lock();
                let resp = match result {
                    Some((matches, known)) => Response::BitrepResult {
                        req_id,
                        key,
                        matches,
                        known,
                    },
                    None => Response::Failed {
                        req_id,
                        key,
                        reason: "file not materialized; acquire it first".to_string(),
                    },
                };
                runtime.send(&mut state, client, &resp);
            }
            Request::Status { req_id } => {
                let mut state = runtime.state.lock();
                let stats = state.dv.stats().clone();
                let resp = Response::StatusInfo {
                    req_id,
                    hits: stats.hits,
                    misses: stats.misses,
                    restarts: stats.restarts,
                    produced_steps: stats.produced_steps,
                    active_sims: state.dv.active_sims() as u64,
                };
                runtime.send(&mut state, client, &resp);
            }
            Request::Bye => break,
            _ => {
                let mut state = runtime.state.lock();
                runtime.send(
                    &mut state,
                    client,
                    &Response::Error {
                        message: "unexpected analysis request".to_string(),
                    },
                );
                break;
            }
        }
    }

    let mut state = runtime.state.lock();
    state.writers.remove(&client);
    state.pending.retain(|(c, _), _| *c != client);
    let now = inner.now();
    let actions = state.dv.handle(now, DvEvent::ClientGone { client });
    runtime.apply_actions(&inner, &mut state, actions);
}

fn simulator_session(
    inner: Arc<Inner>,
    runtime: Arc<CtxRuntime>,
    mut stream: TcpStream,
    sim: SimId,
) {
    {
        let mut writer = match stream.try_clone() {
            Ok(w) => w,
            Err(_) => return,
        };
        let _ = wire::write_frame(&mut writer, &Response::HelloOk { client_id: sim }.encode());
    }
    let mut finished = false;
    loop {
        let frame = match wire::read_frame(&mut stream) {
            Ok(Some(body)) => body,
            _ => break,
        };
        let req = match Request::decode(&frame) {
            Ok(r) => r,
            Err(_) => break,
        };
        let event = match req {
            Request::SimStarted => DvEvent::SimStarted { sim },
            Request::FileProduced { key, size } => DvEvent::FileProduced { sim, key, size },
            Request::SimFinished => {
                finished = true;
                DvEvent::SimFinished { sim }
            }
            Request::Bye => break,
            _ => break,
        };
        let mut state = runtime.state.lock();
        let now = inner.now();
        let actions = state.dv.handle(now, event);
        runtime.apply_actions(&inner, &mut state, actions);
        if finished {
            break;
        }
    }
    if !finished {
        // Connection died mid-run: the re-simulation failed.
        let mut state = runtime.state.lock();
        let now = inner.now();
        let actions = state.dv.handle(now, DvEvent::SimFailed { sim });
        runtime.apply_actions(&inner, &mut state, actions);
    }
    let _ = runtime.launcher.reap();
}

/// In-process simulator launcher: "launches" jobs as threads that
/// connect back to the daemon like a real simulator process would. Used
/// by tests and the virtual examples; production deployments use
/// [`simbatch::ProcessLauncher`] with the `simfs-simd` binary.
pub struct ThreadSimLauncher {
    /// Generates the bytes of output step `key`.
    make_bytes: Arc<dyn Fn(u64) -> Vec<u8> + Send + Sync>,
    /// Maps a key to its published filename (must agree with the
    /// context's driver).
    name_of: Arc<dyn Fn(u64) -> String + Send + Sync>,
    /// Wall-clock production delay per step (simulates `tau_sim`).
    step_delay: std::time::Duration,
    /// Restart latency before the first step (simulates `alpha_sim`).
    restart_delay: std::time::Duration,
    kill_flags: Mutex<HashMap<JobId, Arc<AtomicBool>>>,
}

impl ThreadSimLauncher {
    /// A launcher producing steps via `make_bytes` with the given
    /// latencies, publishing them under `name_of(key)`.
    pub fn new(
        make_bytes: impl Fn(u64) -> Vec<u8> + Send + Sync + 'static,
        name_of: impl Fn(u64) -> String + Send + Sync + 'static,
        restart_delay: std::time::Duration,
        step_delay: std::time::Duration,
    ) -> ThreadSimLauncher {
        ThreadSimLauncher {
            make_bytes: Arc::new(make_bytes),
            name_of: Arc::new(name_of),
            step_delay,
            restart_delay,
            kill_flags: Mutex::new(HashMap::new()),
        }
    }

    fn parse_arg(spec: &SpawnSpec, flag: &str) -> Option<u64> {
        let pos = spec.args.iter().position(|a| a == flag)?;
        spec.args.get(pos + 1)?.parse().ok()
    }

    fn env_of<'a>(spec: &'a SpawnSpec, key: &str) -> Option<&'a str> {
        spec.env
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

impl JobLauncher for ThreadSimLauncher {
    fn launch(&self, job: JobId, spec: &SpawnSpec) -> io::Result<simbatch::JobHandle> {
        let start = Self::parse_arg(spec, "--start-key")
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "missing --start-key"))?;
        let stop = Self::parse_arg(spec, "--stop-key")
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "missing --stop-key"))?;
        let addr = Self::env_of(spec, env_keys::DV_ADDR)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "missing DV addr"))?
            .to_string();
        let sim_id: u64 = Self::env_of(spec, env_keys::SIM_ID)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "missing sim id"))?;
        let context = Self::env_of(spec, env_keys::CONTEXT).unwrap_or("").to_string();
        let data_dir = Self::env_of(spec, env_keys::DATA_DIR)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "missing data dir"))?
            .to_string();

        let killed = Arc::new(AtomicBool::new(false));
        self.kill_flags.lock().insert(job, Arc::clone(&killed));
        let make_bytes = Arc::clone(&self.make_bytes);
        let name_of = Arc::clone(&self.name_of);
        let (restart_delay, step_delay) = (self.restart_delay, self.step_delay);

        std::thread::spawn(move || {
            let run = || -> io::Result<()> {
                let mut stream = TcpStream::connect(&addr)?;
                wire::write_frame(
                    &mut stream,
                    &Request::Hello {
                        kind: ClientKind::Simulator { sim_id },
                        context,
                    }
                    .encode(),
                )?;
                let _ = wire::read_frame(&mut stream)?; // HelloOk
                std::thread::sleep(restart_delay);
                wire::write_frame(&mut stream, &Request::SimStarted.encode())?;
                let area = StorageArea::create(&data_dir, u64::MAX)?;
                for key in start..=stop {
                    if killed.load(Ordering::SeqCst) {
                        // Killed: vanish without SimFinished; the server
                        // treats the drop as SimFailed — unless the DV
                        // already removed the sim (the normal kill path).
                        return Ok(());
                    }
                    std::thread::sleep(step_delay);
                    let bytes = make_bytes(key);
                    let size = area.publish(&name_of(key), &bytes)?;
                    wire::write_frame(&mut stream, &Request::FileProduced { key, size }.encode())?;
                }
                wire::write_frame(&mut stream, &Request::SimFinished.encode())?;
                Ok(())
            };
            let _ = run();
        });
        Ok(simbatch::JobHandle { job, pid: 0 })
    }

    fn kill(&self, job: JobId) -> io::Result<()> {
        if let Some(flag) = self.kill_flags.lock().remove(&job) {
            flag.store(true, Ordering::SeqCst);
        }
        Ok(())
    }

    fn reap(&self) -> Vec<(JobId, bool)> {
        Vec::new()
    }
}
