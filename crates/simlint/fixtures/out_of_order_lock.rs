// Fixture: lock-order violations. Checked as if it were
// crates/core/src/server.rs (the registry's matcher set for that
// file). Not compiled — consumed by include_str! in tests.

fn seeded_out_of_order(rt: &Runtime) {
    // wal is level 20; acquiring a DV shard (level 40) under it climbs
    // the hierarchy: violation #1.
    let mut w = rt.wal.lock();
    let core = rt.shards[0].lock();
    drop(core);
    drop(w);
}

fn seeded_equal_rank(rt: &Runtime) {
    // ledger and leases are both level 20; equal levels never nest:
    // violation #2.
    let mut ledger = rt.ledger.lock();
    let n = rt.leases.lock().len();
    drop(ledger);
}

fn fine_descending(rt: &Runtime) {
    // 40 then 20 is a legal descending chain; no finding.
    let core = rt.shards[0].lock();
    let pins = rt.ledger.lock().pins();
    drop(core);
}

fn fine_after_drop(rt: &Runtime) {
    // Explicit drop releases the bound guard; no finding.
    let mut w = rt.wal.lock();
    drop(w);
    let core = rt.shards[0].lock();
}
