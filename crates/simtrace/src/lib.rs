//! # simtrace — analysis access-pattern generators
//!
//! The replacement-scheme evaluation (Fig. 5) and the cost studies
//! (Figs. 1, 12–14) drive SimFS with synthetic analysis workloads:
//!
//! * **forward / backward scans** — time-ordered traversals, the common
//!   visualization and root-cause-analysis patterns (§IV-B);
//! * **random accesses** — uniformly chosen output steps;
//! * **ECMWF-like archival accesses** — the paper replays a proprietary
//!   trace of the ECMWF ECFS archive (874 distinct files, 659,989
//!   accesses, Jan 2012–May 2014). That trace is not redistributable, so
//!   [`ecmwf`] synthesizes an equivalent stream with the published
//!   aggregate statistics: Zipf-skewed file popularity plus bursty
//!   sessions of neighbouring steps (archival users fetch runs of
//!   consecutive model outputs). See DESIGN.md §3 for the substitution
//!   rationale.
//! * **overlap interleaving** — §V-A expresses multi-analysis pressure
//!   as the percentage of an analysis' accesses that are interleaved
//!   with other analyses; [`interleave`] implements that merge.
//!
//! All generators are deterministic functions of a [`simkit::SimRng`].

pub mod ecmwf;
pub mod interleave;
pub mod scan;

pub use ecmwf::EcmwfSpec;
pub use interleave::interleave_with_overlap;
pub use scan::{backward_scan, fig5_trace, forward_scan, random_accesses, strided_scan};

use serde::{Deserialize, Serialize};

/// The access patterns evaluated in Fig. 5, in the paper's tile order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pattern {
    /// Backward-in-time trajectories.
    Backward,
    /// ECMWF-like archival accesses.
    Ecmwf,
    /// Forward-in-time trajectories.
    Forward,
    /// Uniformly random accesses.
    Random,
}

impl Pattern {
    /// All patterns in figure order.
    pub const ALL: [Pattern; 4] = [
        Pattern::Backward,
        Pattern::Ecmwf,
        Pattern::Forward,
        Pattern::Random,
    ];

    /// The tile label used in Fig. 5.
    pub fn label(self) -> &'static str {
        match self {
            Pattern::Backward => "Backward",
            Pattern::Ecmwf => "ECMWF",
            Pattern::Forward => "Forward",
            Pattern::Random => "Random",
        }
    }
}

/// One access in a multi-analysis trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceAccess {
    /// Which analysis issued the access (0-based).
    pub analysis: u32,
    /// The output-step key accessed.
    pub step: u64,
}

/// A flat access trace, optionally attributed to multiple analyses.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Accesses in issue order.
    pub accesses: Vec<TraceAccess>,
}

impl Trace {
    /// A single-analysis trace from a step sequence.
    pub fn single(steps: impl IntoIterator<Item = u64>) -> Trace {
        Trace {
            accesses: steps
                .into_iter()
                .map(|step| TraceAccess { analysis: 0, step })
                .collect(),
        }
    }

    /// Number of accesses.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// True if the trace has no accesses.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// Number of distinct steps touched.
    pub fn distinct_steps(&self) -> usize {
        let mut steps: Vec<u64> = self.accesses.iter().map(|a| a.step).collect();
        steps.sort_unstable();
        steps.dedup();
        steps.len()
    }

    /// Serializes to a simple `analysis,step` CSV body (one line per
    /// access) for external plotting.
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(self.accesses.len() * 8);
        out.push_str("analysis,step\n");
        for a in &self.accesses {
            out.push_str(&format!("{},{}\n", a.analysis, a.step));
        }
        out
    }

    /// Parses the format produced by [`Trace::to_csv`].
    pub fn from_csv(text: &str) -> Result<Trace, String> {
        let mut accesses = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if i == 0 && line.starts_with("analysis") {
                continue;
            }
            if line.trim().is_empty() {
                continue;
            }
            let (a, s) = line
                .split_once(',')
                .ok_or_else(|| format!("line {}: missing comma", i + 1))?;
            accesses.push(TraceAccess {
                analysis: a
                    .trim()
                    .parse()
                    .map_err(|e| format!("line {}: {e}", i + 1))?,
                step: s
                    .trim()
                    .parse()
                    .map_err(|e| format!("line {}: {e}", i + 1))?,
            });
        }
        Ok(Trace { accesses })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_trace_construction() {
        let t = Trace::single([3, 2, 1]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.accesses[0], TraceAccess { analysis: 0, step: 3 });
        assert_eq!(t.distinct_steps(), 3);
    }

    #[test]
    fn distinct_counts_dedupe() {
        let t = Trace::single([1, 1, 2, 2, 2]);
        assert_eq!(t.len(), 5);
        assert_eq!(t.distinct_steps(), 2);
    }

    #[test]
    fn csv_roundtrip() {
        let t = Trace {
            accesses: vec![
                TraceAccess { analysis: 0, step: 10 },
                TraceAccess { analysis: 1, step: 20 },
            ],
        };
        let csv = t.to_csv();
        assert_eq!(Trace::from_csv(&csv).unwrap(), t);
    }

    #[test]
    fn csv_rejects_garbage() {
        assert!(Trace::from_csv("analysis,step\nnot-a-number,5\n").is_err());
        assert!(Trace::from_csv("analysis,step\n3 5\n").is_err());
    }

    #[test]
    fn pattern_labels() {
        assert_eq!(Pattern::Ecmwf.label(), "ECMWF");
        assert_eq!(Pattern::ALL.len(), 4);
    }
}
