//! End-to-end virtual-time experiments as benchmarks: one scaled-down
//! run per timing figure, plus DV event-handling throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simbatch::QueueModel;
use simfs_core::dv::{DataVirtualizer, DvEvent};
use simfs_core::model::{ContextCfg, StepMath};
use simfs_core::vharness::VirtualExperiment;
use simkit::{Dur, SimTime};
use std::hint::black_box;

fn bench_dv_event_handling(c: &mut Criterion) {
    c.bench_function("dv_acquire_hit_path", |b| {
        let ctx = ContextCfg::new("bench", StepMath::new(1, 8, 10_000), 100, u64::MAX / 4)
            .with_prefetch(false);
        let mut dv = DataVirtualizer::new(ctx);
        // Materialize 1..=512 once.
        let actions = dv.handle(SimTime::ZERO, DvEvent::Acquire { client: 1, key: 1 });
        for a in actions {
            if let simfs_core::dv::DvAction::Launch { sim, keys, .. } = a {
                dv.handle(SimTime::ZERO, DvEvent::SimStarted { sim });
                for k in keys {
                    dv.handle(SimTime::ZERO, DvEvent::FileProduced { sim, key: k, size: 100 });
                }
                dv.handle(SimTime::ZERO, DvEvent::SimFinished { sim });
            }
        }
        dv.handle(SimTime::ZERO, DvEvent::Release { client: 1, key: 1 });
        let mut t = 1u64;
        b.iter(|| {
            t += 1;
            let now = SimTime::from_nanos(t);
            let key = 1 + (t % 8);
            black_box(dv.handle(now, DvEvent::Acquire { client: 1, key }));
            dv.handle(now, DvEvent::Release { client: 1, key });
        })
    });
}

fn bench_virtual_experiments(c: &mut Criterion) {
    let mut group = c.benchmark_group("virtual_experiment");
    group.sample_size(20);
    for (name, dd, dr, tau_ms, alpha_ms) in [
        ("fig16_cosmo", 5u64, 60u64, 300u64, 1300u64),
        ("fig18_flash", 1, 20, 1400, 700),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            let steps = StepMath::new(dd, dr, dd * 1000);
            let cfg = ContextCfg::new("bench", steps, 1, u64::MAX / 4).with_smax(8);
            let exp = VirtualExperiment {
                cfg,
                alpha_sim: Dur::from_millis(alpha_ms),
                tau_sim: Dur::from_millis(tau_ms),
                queue: QueueModel::None,
                nodes_per_sim: 4,
                seed: 3,
            };
            let accesses: Vec<u64> = (1..=72).collect();
            b.iter(|| black_box(exp.run_analysis(&accesses, Dur::from_millis(50))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dv_event_handling, bench_virtual_experiments);
criterion_main!(benches);
