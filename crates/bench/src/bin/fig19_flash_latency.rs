//! Fig. 19: prefetching FLASH simulations under different restart
//! latencies and analysis lengths (m ∈ {200, 400, 600}).
//!
//! `cargo run -p simfs-bench --bin fig19_flash_latency [--full]`

use simfs_bench::prefetchfigs::{latency, latency_table, ScalingConfig};
use simfs_bench::RunOpts;

fn main() {
    let opts = RunOpts::from_args();
    let mut cfg = ScalingConfig::flash();
    cfg.n_timesteps = 2400;
    let ms: &[u64] = &[200, 400, 600];
    let alphas: &[u64] = if opts.full {
        &[0, 50, 100, 200, 300, 400, 500, 600]
    } else {
        &[0, 100, 300, 600]
    };
    let points = latency(&cfg, ms, alphas, &opts);
    let table = latency_table(&cfg, &points);
    table.print();
    let path = table
        .write_csv(&opts.out_dir, "fig19_flash_latency")
        .expect("write CSV");
    println!("\nCSV: {}", path.display());
}
