// Fixture: Effects-outbox violations — blocking denylist calls while
// a `blocking: no` lock is held. Checked as if it were
// crates/core/src/server.rs. Not compiled — consumed by include_str!.

fn seeded_blocking_under_ledger(rt: &Runtime, spec: LaunchSpec) {
    // ledger is blocking: no; `launch` is denylisted: violation.
    let mut ledger = rt.ledger.lock();
    rt.launcher.launch(spec);
    drop(ledger);
}

fn seeded_write_under_shard_temp(rt: &Runtime, bytes: &[u8]) {
    // Statement temporary also counts as held for the statement:
    // `write_all` inside the argument list runs under the shard lock.
    rt.shards[0].lock().dv.apply(file.write_all(bytes));
}

fn fine_blocking_under_wal(rt: &Runtime, bytes: &[u8]) {
    // wal is blocking: yes — batched file I/O under it is its purpose.
    let mut w = rt.wal.lock();
    w.file.write_all(bytes).unwrap();
    drop(w);
}

fn fine_effects_after_release(rt: &Runtime, spec: LaunchSpec) {
    let job = {
        let mut ledger = rt.ledger.lock();
        ledger.admit(spec.key)
    };
    // Collected under the lock, effected after release: no finding.
    rt.launcher.launch(spec);
}
