//! Ablation: what each prefetching ingredient buys (DESIGN.md calls
//! out the §IV design choices; this harness isolates them).
//!
//! Four configurations over the same COSMO-style forward analysis:
//!
//! * `none` — no prefetching: every miss pays `alpha_sim`;
//! * `mask-only` — prefetching with `s_max = 1`: restart latencies
//!   masked, no bandwidth matching;
//! * `ramp` — full prefetching with the conservative doubling ramp
//!   (§IV-B1b option);
//! * `full` — full prefetching, `s_opt` launched directly.
//!
//! `cargo run -p simfs-bench --bin ablation_prefetch`

use simbatch::QueueModel;
use simfs_bench::output::{fmt, RunOpts, Table};
use simfs_core::model::{ContextCfg, StepMath};
use simfs_core::vharness::VirtualExperiment;
use simkit::Dur;

fn experiment(prefetch: bool, ramp: bool, smax: u32, seed: u64) -> VirtualExperiment {
    let steps = StepMath::new(5, 60, 5 * 2400);
    let cfg = ContextCfg::new("ablation", steps, 1, u64::MAX / 4)
        .with_policy("dcl")
        .with_smax(smax)
        .with_prefetch(prefetch)
        .with_prefetch_ramp(ramp);
    VirtualExperiment {
        cfg,
        alpha_sim: Dur::from_secs(13),
        tau_sim: Dur::from_secs(3),
        queue: QueueModel::None,
        nodes_per_sim: 100,
        seed,
    }
}

fn main() {
    let opts = RunOpts::from_args();
    let m = 144u64;
    let accesses: Vec<u64> = (241..241 + m).collect();
    let tau_cli = Dur::from_millis(500);

    let mut t = Table::new(
        "Prefetching ablation — COSMO config, forward analysis of 144 steps",
        &["variant", "completion_s", "speedup_vs_none", "restarts", "peak_sims"],
    );
    let configs: [(&str, bool, bool, u32); 4] = [
        ("none", false, false, 8),
        ("mask-only", true, false, 1),
        ("ramp", true, true, 8),
        ("full", true, false, 8),
    ];
    let mut baseline = None;
    for (name, prefetch, ramp, smax) in configs {
        let exp = experiment(prefetch, ramp, smax, opts.seed);
        let res = exp.run_analysis(&accesses, tau_cli);
        let secs = res.completion.as_secs_f64();
        let base = *baseline.get_or_insert(secs);
        t.row(vec![
            name.to_string(),
            fmt(secs),
            fmt(base / secs),
            res.stats.restarts.to_string(),
            res.peak_sims.to_string(),
        ]);
    }
    t.print();
    let path = t
        .write_csv(&opts.out_dir, "ablation_prefetch")
        .expect("write CSV");
    println!("\nCSV: {}", path.display());
}
