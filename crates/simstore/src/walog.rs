//! Write-ahead pin/lease log: the durability substrate for DV restart
//! recovery.
//!
//! The DV's authority over a storage area — which steps are pinned by
//! whom, which clients hold leases — lives in daemon memory. This
//! module makes that authority *re-establishable*: the daemon appends a
//! fixed-size checksummed record for every pin acquire/release, client
//! lease and recovery epoch, and a restarted daemon replays the log to
//! restore the pins under a fresh epoch.
//!
//! Design points:
//!
//! * **Fixed 40-byte records** ([`RECORD_LEN`]) with an FNV-1a 64
//!   checksum over the first 32 bytes ([`crate::checksum`]). A record
//!   either replays whole or not at all; there is no variable-length
//!   framing to resynchronize.
//! * **Torn tails are expected, not errors.** A crash mid-append leaves
//!   a partial or corrupt last record; [`replay_bytes`] recovers the
//!   longest valid prefix and [`WriteAheadLog::open`] truncates the
//!   file back to it. Anything lost past that point is reconciled by
//!   the client re-assertion protocol, never by guessing.
//! * **Appends are buffered.** [`WriteAheadLog::append`] only encodes
//!   into memory; [`flush`](WriteAheadLog::flush) writes and
//!   [`sync`](WriteAheadLog::sync) fsyncs, so the daemon batches
//!   durability off its hot path (records ride the `Effects` outbox
//!   and are flushed at the same drain points as access digests).
//! * **Replay is pure.** [`WalState`] folds records into pin counts and
//!   leases with no I/O, so the deterministic fault-injection harness
//!   journals into in-memory buffers and replays them under virtual
//!   time exactly as the daemon replays files.

use crate::checksum::fnv1a64;
use simkit::lockrank;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Encoded size of every WAL record.
pub const RECORD_LEN: usize = 40;

/// One durable control-plane fact.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalRecord {
    /// A recovery epoch began (appended once per daemon start).
    Epoch {
        /// The new epoch (strictly increasing across restarts).
        epoch: u64,
    },
    /// `client` pinned `key` (one count).
    PinAcquire {
        /// Pinning client.
        client: u64,
        /// Pinned key.
        key: u64,
        /// Epoch the pin was taken under.
        epoch: u64,
    },
    /// `client` released one pin count on `key`.
    PinRelease {
        /// Releasing client.
        client: u64,
        /// Released key.
        key: u64,
        /// Epoch the release happened under.
        epoch: u64,
    },
    /// `client` holds a lease (registered with the daemon).
    Lease {
        /// Leased client.
        client: u64,
        /// Epoch the lease was granted under.
        epoch: u64,
    },
    /// `client` departed: all its pins and its lease are void.
    ClientGone {
        /// Departed client.
        client: u64,
        /// Epoch of the departure.
        epoch: u64,
    },
    /// `client` pinned `key` (one count) on behalf of a *dead cluster
    /// member* — a takeover pin granted while this daemon serves a
    /// foreign interval. Replays and nets exactly like
    /// [`PinAcquire`](WalRecord::PinAcquire) (the residency veto is the
    /// same); the tag distinguishes takeover-held pins in the journal
    /// so operators can see degraded-mode state. Compaction snapshots
    /// canonicalize it back to `PinAcquire`.
    TakeoverPin {
        /// Pinning client (at the taker).
        client: u64,
        /// Pinned foreign-interval key.
        key: u64,
        /// The *taker's* epoch the pin was taken under.
        epoch: u64,
    },
}

const TAG_EPOCH: u8 = 1;
const TAG_PIN_ACQUIRE: u8 = 2;
const TAG_PIN_RELEASE: u8 = 3;
const TAG_LEASE: u8 = 4;
const TAG_CLIENT_GONE: u8 = 5;
const TAG_TAKEOVER_PIN: u8 = 6;

impl WalRecord {
    fn parts(&self) -> (u8, u64, u64, u64) {
        match *self {
            WalRecord::Epoch { epoch } => (TAG_EPOCH, 0, 0, epoch),
            WalRecord::PinAcquire { client, key, epoch } => (TAG_PIN_ACQUIRE, client, key, epoch),
            WalRecord::PinRelease { client, key, epoch } => (TAG_PIN_RELEASE, client, key, epoch),
            WalRecord::Lease { client, epoch } => (TAG_LEASE, client, 0, epoch),
            WalRecord::ClientGone { client, epoch } => (TAG_CLIENT_GONE, client, 0, epoch),
            WalRecord::TakeoverPin { client, key, epoch } => (TAG_TAKEOVER_PIN, client, key, epoch),
        }
    }

    /// The record's epoch field.
    pub fn epoch(&self) -> u64 {
        self.parts().3
    }
}

/// Appends the canonical encoding of `r` to `out`.
pub fn encode_record(r: &WalRecord, out: &mut Vec<u8>) {
    let (tag, client, key, epoch) = r.parts();
    let start = out.len();
    out.push(tag);
    out.extend_from_slice(&[0u8; 7]);
    out.extend_from_slice(&client.to_le_bytes());
    out.extend_from_slice(&key.to_le_bytes());
    out.extend_from_slice(&epoch.to_le_bytes());
    let sum = fnv1a64(&out[start..start + 32]);
    out.extend_from_slice(&sum.to_le_bytes());
    debug_assert_eq!(out.len() - start, RECORD_LEN);
}

/// Decodes one record from a [`RECORD_LEN`]-byte buffer; `None` if the
/// checksum or tag is invalid (a torn or corrupt record).
pub fn decode_record(buf: &[u8]) -> Option<WalRecord> {
    if buf.len() < RECORD_LEN {
        return None;
    }
    let stored = u64::from_le_bytes(buf[32..40].try_into().unwrap());
    if fnv1a64(&buf[..32]) != stored {
        return None;
    }
    if buf[1..8].iter().any(|&b| b != 0) {
        return None;
    }
    let client = u64::from_le_bytes(buf[8..16].try_into().unwrap());
    let key = u64::from_le_bytes(buf[16..24].try_into().unwrap());
    let epoch = u64::from_le_bytes(buf[24..32].try_into().unwrap());
    Some(match buf[0] {
        TAG_EPOCH => WalRecord::Epoch { epoch },
        TAG_PIN_ACQUIRE => WalRecord::PinAcquire { client, key, epoch },
        TAG_PIN_RELEASE => WalRecord::PinRelease { client, key, epoch },
        TAG_LEASE => WalRecord::Lease { client, epoch },
        TAG_CLIENT_GONE => WalRecord::ClientGone { client, epoch },
        TAG_TAKEOVER_PIN => WalRecord::TakeoverPin { client, key, epoch },
        _ => return None,
    })
}

/// What [`replay_bytes`] found.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Bytes of the longest valid record prefix.
    pub valid_bytes: u64,
    /// Records in that prefix.
    pub records: u64,
    /// Whether bytes past the prefix were discarded (torn tail).
    pub truncated: bool,
}

/// Decodes the longest valid record prefix of `bytes`. Replay stops at
/// the first record that is short, checksum-corrupt, or has an unknown
/// tag — everything before it is trusted, everything after discarded.
pub fn replay_bytes(bytes: &[u8]) -> (Vec<WalRecord>, ReplayReport) {
    let mut records = Vec::new();
    let mut off = 0usize;
    while off + RECORD_LEN <= bytes.len() {
        let Some(r) = decode_record(&bytes[off..off + RECORD_LEN]) else {
            break;
        };
        records.push(r);
        off += RECORD_LEN;
    }
    let report = ReplayReport {
        valid_bytes: off as u64,
        records: records.len() as u64,
        truncated: off != bytes.len(),
    };
    (records, report)
}

/// Removes pin acquire/release pairs that cancel within one flush
/// window: for each `(client, key)` the net pin delta is computed and
/// only `|delta|` one-sided records survive (other record kinds pass
/// through in order). The daemon nets each connection's buffered window
/// before appending, so a hit-path acquire→release round trip in
/// steady state writes nothing at all.
pub fn net_pin_window(records: &mut Vec<WalRecord>) {
    let mut delta: HashMap<(u64, u64), i64> = HashMap::new();
    for r in records.iter() {
        match *r {
            WalRecord::PinAcquire { client, key, .. }
            | WalRecord::TakeoverPin { client, key, .. } => {
                *delta.entry((client, key)).or_insert(0) += 1;
            }
            WalRecord::PinRelease { client, key, .. } => {
                *delta.entry((client, key)).or_insert(0) -= 1;
            }
            _ => {}
        }
    }
    records.retain(|r| match *r {
        WalRecord::PinAcquire { client, key, .. } | WalRecord::TakeoverPin { client, key, .. } => {
            let d = delta.get_mut(&(client, key)).unwrap();
            if *d > 0 {
                *d -= 1;
                true
            } else {
                false
            }
        }
        WalRecord::PinRelease { client, key, .. } => {
            let d = delta.get_mut(&(client, key)).unwrap();
            if *d < 0 {
                *d += 1;
                true
            } else {
                false
            }
        }
        _ => true,
    });
}

/// Pure fold of a record stream into recoverable state: per-client pin
/// counts and live leases, plus the highest epoch seen.
#[derive(Clone, Debug, Default)]
pub struct WalState {
    /// Highest epoch recorded.
    pub epoch: u64,
    /// `(client, key)` → pin count. Releases saturate at zero (a
    /// release whose acquire fell past a torn tail must not underflow
    /// into resurrecting someone else's pin).
    pub pins: HashMap<(u64, u64), u32>,
    /// Clients holding leases (registered and not gone).
    pub leases: Vec<u64>,
}

impl WalState {
    /// Applies one record.
    pub fn apply(&mut self, r: &WalRecord) {
        self.epoch = self.epoch.max(r.epoch());
        match *r {
            WalRecord::Epoch { .. } => {}
            WalRecord::PinAcquire { client, key, .. }
            | WalRecord::TakeoverPin { client, key, .. } => {
                *self.pins.entry((client, key)).or_insert(0) += 1;
            }
            WalRecord::PinRelease { client, key, .. } => {
                if let Some(n) = self.pins.get_mut(&(client, key)) {
                    *n -= 1;
                    if *n == 0 {
                        self.pins.remove(&(client, key));
                    }
                }
            }
            WalRecord::Lease { client, .. } => {
                if !self.leases.contains(&client) {
                    self.leases.push(client);
                }
            }
            WalRecord::ClientGone { client, .. } => {
                self.pins.retain(|&(c, _), _| c != client);
                self.leases.retain(|&c| c != client);
            }
        }
    }

    /// Folds a whole record stream.
    pub fn replay(records: &[WalRecord]) -> WalState {
        let mut state = WalState::default();
        for r in records {
            state.apply(r);
        }
        state
    }

    /// Clients that still matter after replay: every lease holder plus
    /// every pin owner, deduplicated.
    pub fn live_clients(&self) -> Vec<u64> {
        let mut out = self.leases.clone();
        for &(c, _) in self.pins.keys() {
            if !out.contains(&c) {
                out.push(c);
            }
        }
        out.sort_unstable();
        out
    }

    /// The minimal record stream reproducing this state under `epoch`
    /// (the compaction snapshot): one epoch record, the leases, then
    /// the pins expanded to their counts.
    pub fn snapshot(&self, epoch: u64) -> Vec<WalRecord> {
        let mut out = vec![WalRecord::Epoch { epoch }];
        let mut leases = self.leases.clone();
        leases.sort_unstable();
        for client in leases {
            out.push(WalRecord::Lease { client, epoch });
        }
        let mut pins: Vec<(&(u64, u64), &u32)> = self.pins.iter().collect();
        pins.sort_unstable();
        for (&(client, key), &count) in pins {
            for _ in 0..count {
                out.push(WalRecord::PinAcquire { client, key, epoch });
            }
        }
        out
    }
}

/// Compact the log once it grows past this many bytes (checked at sync
/// points; the snapshot is bounded by live pins + leases, so a busy but
/// steady daemon's log stays small forever).
pub const COMPACT_THRESHOLD: u64 = 64 * 1024;

/// An append-only, torn-tail-tolerant record log backed by one file.
#[derive(Debug)]
pub struct WriteAheadLog {
    path: PathBuf,
    file: File,
    /// Encoded-but-unwritten records.
    pending: Vec<u8>,
    /// Bytes durably (well: written; see `dirty`) in the file.
    file_bytes: u64,
    /// Records appended over this log's lifetime (stat feed).
    appended: u64,
    /// Actual `fdatasync` calls over this log's lifetime (stat feed:
    /// `appended / syncs` is the group-fsync batching factor).
    syncs: u64,
    /// Written bytes not yet fsynced.
    dirty: bool,
}

impl WriteAheadLog {
    /// Opens (creating if missing) the log at `path`, replays its
    /// longest valid record prefix and truncates any torn tail away.
    /// Returns the log positioned for appends plus the replayed
    /// records and a report of what was found.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<(WriteAheadLog, Vec<WalRecord>, ReplayReport)> {
        let path = path.into();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let (records, report) = replay_bytes(&bytes);
        if report.truncated {
            file.set_len(report.valid_bytes)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::Start(report.valid_bytes))?;
        Ok((
            WriteAheadLog {
                path,
                file,
                pending: Vec::new(),
                file_bytes: report.valid_bytes,
                appended: 0,
                syncs: 0,
                dirty: false,
            },
            records,
            report,
        ))
    }

    /// Buffers one record (no syscalls).
    pub fn append(&mut self, r: &WalRecord) {
        encode_record(r, &mut self.pending);
        self.appended += 1;
    }

    /// Buffers every record in `records`.
    pub fn append_all(&mut self, records: &[WalRecord]) {
        for r in records {
            self.append(r);
        }
    }

    /// Writes buffered records to the file (no fsync); returns the
    /// bytes written.
    pub fn flush(&mut self) -> io::Result<usize> {
        lockrank::assert_blocking_ok("walog flush");
        if self.pending.is_empty() {
            return Ok(0);
        }
        self.file.write_all(&self.pending)?;
        let n = self.pending.len();
        self.file_bytes += n as u64;
        self.pending.clear();
        self.dirty = true;
        Ok(n)
    }

    /// Flushes and, if anything was written since the last sync,
    /// fsyncs — the batched durability point.
    pub fn sync(&mut self) -> io::Result<()> {
        lockrank::assert_blocking_ok("walog sync");
        self.flush()?;
        if self.dirty {
            self.file.sync_data()?;
            self.syncs += 1;
            self.dirty = false;
        }
        Ok(())
    }

    /// Atomically replaces the log's contents with `records` (write
    /// temp + fsync + rename), e.g. a [`WalState::snapshot`] at a
    /// checkpoint. Pending unflushed records are discarded — the
    /// snapshot is expected to already reflect them.
    pub fn compact(&mut self, records: &[WalRecord]) -> io::Result<()> {
        lockrank::assert_blocking_ok("walog compact");
        let tmp = self.path.with_extension("tmp-compact");
        let mut bytes = Vec::with_capacity(records.len() * RECORD_LEN);
        for r in records {
            encode_record(r, &mut bytes);
        }
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        let mut file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        file.seek(SeekFrom::End(0))?;
        self.file = file;
        self.file_bytes = bytes.len() as u64;
        self.pending.clear();
        self.dirty = false;
        Ok(())
    }

    /// Bytes in the backing file (flushed; excludes pending).
    pub fn file_bytes(&self) -> u64 {
        self.file_bytes
    }

    /// Records appended over this log's lifetime.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// `fdatasync` calls over this log's lifetime. With group fsync
    /// (the daemon's effect tier) this stays well below
    /// [`appended`](Self::appended) under load.
    pub fn syncs(&self) -> u64 {
        self.syncs
    }

    /// The backing file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "simstore-walog-{tag}-{}-{:?}.log",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Epoch { epoch: 3 },
            WalRecord::Lease { client: 7, epoch: 3 },
            WalRecord::PinAcquire { client: 7, key: 11, epoch: 3 },
            WalRecord::PinAcquire { client: 7, key: 11, epoch: 3 },
            WalRecord::PinAcquire { client: 9, key: 12, epoch: 3 },
            WalRecord::PinRelease { client: 7, key: 11, epoch: 3 },
            WalRecord::ClientGone { client: 9, epoch: 3 },
        ]
    }

    #[test]
    fn encode_decode_roundtrip() {
        for r in sample_records() {
            let mut buf = Vec::new();
            encode_record(&r, &mut buf);
            assert_eq!(buf.len(), RECORD_LEN);
            assert_eq!(decode_record(&buf), Some(r));
        }
    }

    #[test]
    fn corrupt_records_rejected() {
        let mut buf = Vec::new();
        encode_record(&WalRecord::PinAcquire { client: 1, key: 2, epoch: 3 }, &mut buf);
        for i in 0..RECORD_LEN {
            let mut bad = buf.clone();
            bad[i] ^= 0x40;
            assert_eq!(decode_record(&bad), None, "flip at byte {i} accepted");
        }
        assert_eq!(decode_record(&buf[..RECORD_LEN - 1]), None);
    }

    #[test]
    fn replay_folds_pins_and_leases() {
        let state = WalState::replay(&sample_records());
        assert_eq!(state.epoch, 3);
        assert_eq!(state.pins.get(&(7, 11)), Some(&1));
        assert_eq!(state.pins.get(&(9, 12)), None, "ClientGone voids pins");
        assert_eq!(state.leases, vec![7]);
        assert_eq!(state.live_clients(), vec![7]);
    }

    #[test]
    fn release_without_acquire_saturates() {
        let mut state = WalState::default();
        state.apply(&WalRecord::PinRelease { client: 1, key: 5, epoch: 1 });
        assert!(state.pins.is_empty());
        state.apply(&WalRecord::PinAcquire { client: 1, key: 5, epoch: 1 });
        assert_eq!(state.pins.get(&(1, 5)), Some(&1));
    }

    #[test]
    fn takeover_pin_replays_and_nets_like_acquire() {
        let r = WalRecord::TakeoverPin { client: 4, key: 9, epoch: 2 };
        let mut buf = Vec::new();
        encode_record(&r, &mut buf);
        assert_eq!(decode_record(&buf), Some(r));
        // Replay: a takeover pin is a pin.
        let state = WalState::replay(&[
            r,
            WalRecord::TakeoverPin { client: 4, key: 9, epoch: 2 },
            WalRecord::PinRelease { client: 4, key: 9, epoch: 2 },
        ]);
        assert_eq!(state.pins.get(&(4, 9)), Some(&1));
        // ClientGone voids takeover pins like native ones.
        let mut state = state;
        state.apply(&WalRecord::ClientGone { client: 4, epoch: 2 });
        assert!(state.pins.is_empty());
        // Netting cancels takeover-pin/release pairs within a window.
        let mut w = vec![
            WalRecord::TakeoverPin { client: 4, key: 9, epoch: 2 },
            WalRecord::PinRelease { client: 4, key: 9, epoch: 2 },
            WalRecord::TakeoverPin { client: 4, key: 10, epoch: 2 },
        ];
        net_pin_window(&mut w);
        assert_eq!(w, vec![WalRecord::TakeoverPin { client: 4, key: 10, epoch: 2 }]);
        // Compaction snapshots canonicalize to PinAcquire.
        let state = WalState::replay(&w);
        assert_eq!(
            state.snapshot(3),
            vec![
                WalRecord::Epoch { epoch: 3 },
                WalRecord::PinAcquire { client: 4, key: 10, epoch: 3 },
            ]
        );
    }

    #[test]
    fn netting_cancels_window_pairs() {
        let mut w = vec![
            WalRecord::PinAcquire { client: 1, key: 5, epoch: 1 },
            WalRecord::Lease { client: 1, epoch: 1 },
            WalRecord::PinRelease { client: 1, key: 5, epoch: 1 },
            WalRecord::PinAcquire { client: 1, key: 6, epoch: 1 },
            WalRecord::PinRelease { client: 2, key: 5, epoch: 1 },
        ];
        net_pin_window(&mut w);
        assert_eq!(
            w,
            vec![
                WalRecord::Lease { client: 1, epoch: 1 },
                WalRecord::PinAcquire { client: 1, key: 6, epoch: 1 },
                WalRecord::PinRelease { client: 2, key: 5, epoch: 1 },
            ]
        );
    }

    #[test]
    fn open_append_reopen_replays() {
        let path = temp_path("reopen");
        let _ = std::fs::remove_file(&path);
        {
            let (mut log, records, report) = WriteAheadLog::open(&path).unwrap();
            assert!(records.is_empty() && !report.truncated);
            log.append_all(&sample_records());
            assert_eq!(log.appended(), 7);
            log.sync().unwrap();
        }
        let (log, records, report) = WriteAheadLog::open(&path).unwrap();
        assert_eq!(records, sample_records());
        assert!(!report.truncated);
        assert_eq!(report.records, 7);
        assert_eq!(log.file_bytes(), 7 * RECORD_LEN as u64);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_truncated_on_open() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        let mut bytes = Vec::new();
        for r in sample_records() {
            encode_record(&r, &mut bytes);
        }
        bytes.extend_from_slice(&[0xAB; 17]); // torn partial record
        std::fs::write(&path, &bytes).unwrap();
        let (mut log, records, report) = WriteAheadLog::open(&path).unwrap();
        assert_eq!(records, sample_records());
        assert!(report.truncated);
        assert_eq!(log.file_bytes(), 7 * RECORD_LEN as u64);
        // Appends after truncation land on the clean boundary.
        log.append(&WalRecord::Epoch { epoch: 4 });
        log.sync().unwrap();
        drop(log);
        let (_, records, report) = WriteAheadLog::open(&path).unwrap();
        assert_eq!(records.len(), 8);
        assert!(!report.truncated);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compact_replaces_with_snapshot() {
        let path = temp_path("compact");
        let _ = std::fs::remove_file(&path);
        let (mut log, _, _) = WriteAheadLog::open(&path).unwrap();
        log.append_all(&sample_records());
        log.sync().unwrap();
        let state = WalState::replay(&sample_records());
        log.compact(&state.snapshot(4)).unwrap();
        assert_eq!(log.file_bytes(), 3 * RECORD_LEN as u64);
        drop(log);
        let (_, records, report) = WriteAheadLog::open(&path).unwrap();
        assert!(!report.truncated);
        let replayed = WalState::replay(&records);
        assert_eq!(replayed.epoch, 4);
        assert_eq!(replayed.pins.get(&(7, 11)), Some(&1));
        assert_eq!(replayed.leases, vec![7]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn snapshot_expands_pin_counts() {
        let mut state = WalState::default();
        state.apply(&WalRecord::PinAcquire { client: 3, key: 8, epoch: 1 });
        state.apply(&WalRecord::PinAcquire { client: 3, key: 8, epoch: 1 });
        let snap = state.snapshot(2);
        let replayed = WalState::replay(&snap);
        assert_eq!(replayed.pins.get(&(3, 8)), Some(&2));
        assert_eq!(replayed.epoch, 2);
    }

    mod torn_tail_props {
        use super::super::*;
        use proptest::prelude::*;

        fn arb_record() -> impl Strategy<Value = WalRecord> {
            let client = 1u64..4;
            let key = 1u64..8;
            let epoch = 1u64..3;
            prop_oneof![
                (1u64..5).prop_map(|epoch| WalRecord::Epoch { epoch }),
                (client.clone(), key.clone(), epoch.clone())
                    .prop_map(|(client, key, epoch)| WalRecord::PinAcquire { client, key, epoch }),
                (client.clone(), key.clone(), epoch.clone())
                    .prop_map(|(client, key, epoch)| WalRecord::PinRelease { client, key, epoch }),
                (client.clone(), key, epoch.clone())
                    .prop_map(|(client, key, epoch)| WalRecord::TakeoverPin { client, key, epoch }),
                (client.clone(), epoch.clone())
                    .prop_map(|(client, epoch)| WalRecord::Lease { client, epoch }),
                (client, epoch)
                    .prop_map(|(client, epoch)| WalRecord::ClientGone { client, epoch }),
            ]
        }

        fn encode_all(records: &[WalRecord]) -> Vec<u8> {
            let mut bytes = Vec::with_capacity(records.len() * RECORD_LEN);
            for r in records {
                encode_record(r, &mut bytes);
            }
            bytes
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            /// A log truncated at *any* byte boundary replays exactly
            /// the records whose encodings fit whole in the remaining
            /// prefix — no panic, no partial record, no invention.
            #[test]
            fn truncation_recovers_longest_valid_prefix(
                records in prop::collection::vec(arb_record(), 0..24),
                cut in any::<prop::sample::Index>(),
            ) {
                let bytes = encode_all(&records);
                let cut = cut.index(bytes.len() + 1);
                let (replayed, report) = replay_bytes(&bytes[..cut]);
                let whole = cut / RECORD_LEN;
                prop_assert_eq!(&replayed[..], &records[..whole]);
                prop_assert_eq!(report.valid_bytes, (whole * RECORD_LEN) as u64);
                prop_assert_eq!(report.truncated, cut % RECORD_LEN != 0);
            }

            /// Truncated replay never resurrects a released pin: the
            /// folded state is exactly the fold of the surviving record
            /// prefix, so a release inside the prefix always lands and
            /// pin counts never exceed the prefix's acquires.
            #[test]
            fn truncation_never_resurrects_released_pins(
                records in prop::collection::vec(arb_record(), 0..24),
                cut in any::<prop::sample::Index>(),
            ) {
                let bytes = encode_all(&records);
                let cut = cut.index(bytes.len() + 1);
                let (replayed, _) = replay_bytes(&bytes[..cut]);
                let state = WalState::replay(&replayed);
                let prefix = &records[..cut / RECORD_LEN];
                // Independent saturating fold over the prefix: every
                // release (of a held pin) and every ClientGone inside
                // the valid prefix must land in the recovered state —
                // truncation may forget pins, never un-release them.
                let mut expect: std::collections::HashMap<(u64, u64), u32> =
                    std::collections::HashMap::new();
                for r in prefix {
                    match *r {
                        WalRecord::PinAcquire { client, key, .. }
                        | WalRecord::TakeoverPin { client, key, .. } => {
                            *expect.entry((client, key)).or_insert(0) += 1;
                        }
                        WalRecord::PinRelease { client, key, .. } => {
                            if let Some(n) = expect.get_mut(&(client, key)) {
                                *n -= 1;
                                if *n == 0 {
                                    expect.remove(&(client, key));
                                }
                            }
                        }
                        WalRecord::ClientGone { client, .. } => {
                            expect.retain(|&(c, _), _| c != client);
                        }
                        _ => {}
                    }
                }
                prop_assert_eq!(&state.pins, &expect);
                for (&(client, key), &count) in &state.pins {
                    let acquires = prefix
                        .iter()
                        .filter(|r| {
                            matches!(
                                **r,
                                WalRecord::PinAcquire { client: c, key: k, .. }
                                | WalRecord::TakeoverPin { client: c, key: k, .. }
                                    if (c, k) == (client, key)
                            )
                        })
                        .count() as u32;
                    prop_assert!(
                        count <= acquires,
                        "pin ({client},{key})×{count} exceeds prefix acquires {acquires}"
                    );
                }
            }

            /// Arbitrary single-byte corruption anywhere in the log is
            /// contained: replay never panics and never accepts records
            /// past the corruption point.
            #[test]
            fn corruption_is_contained(
                records in prop::collection::vec(arb_record(), 1..16),
                pos in any::<prop::sample::Index>(),
                flip in 1u8..=255,
            ) {
                let mut bytes = encode_all(&records);
                let pos = pos.index(bytes.len());
                bytes[pos] ^= flip;
                let (replayed, report) = replay_bytes(&bytes);
                let hit = pos / RECORD_LEN;
                prop_assert!(replayed.len() <= hit);
                prop_assert_eq!(&replayed[..], &records[..replayed.len()]);
                prop_assert!(report.truncated);
            }

            /// Netting a window preserves its meaning: the signed pin
            /// delta per `(client, key)` and every non-pin record are
            /// unchanged, so appending a netted window instead of the
            /// original can never alter what a later replay recovers.
            #[test]
            fn netting_preserves_window_deltas(
                records in prop::collection::vec(arb_record(), 0..24),
            ) {
                fn deltas(w: &[WalRecord]) -> std::collections::HashMap<(u64, u64), i64> {
                    let mut d = std::collections::HashMap::new();
                    for r in w {
                        match *r {
                            WalRecord::PinAcquire { client, key, .. }
                            | WalRecord::TakeoverPin { client, key, .. } => {
                                *d.entry((client, key)).or_insert(0) += 1
                            }
                            WalRecord::PinRelease { client, key, .. } => {
                                *d.entry((client, key)).or_insert(0) -= 1
                            }
                            _ => {}
                        }
                    }
                    d.retain(|_, v| *v != 0);
                    d
                }
                fn others(w: &[WalRecord]) -> Vec<WalRecord> {
                    w.iter()
                        .filter(|r| {
                            !matches!(
                                r,
                                WalRecord::PinAcquire { .. }
                                    | WalRecord::PinRelease { .. }
                                    | WalRecord::TakeoverPin { .. }
                            )
                        })
                        .copied()
                        .collect()
                }
                let mut window = records;
                let (d0, o0) = (deltas(&window), others(&window));
                net_pin_window(&mut window);
                prop_assert_eq!(deltas(&window), d0);
                prop_assert_eq!(others(&window), o0);
                // And the netted window is minimal: |records| per key
                // equals |delta|.
                let mut counts = std::collections::HashMap::new();
                for r in &window {
                    if let WalRecord::PinAcquire { client, key, .. }
                    | WalRecord::PinRelease { client, key, .. }
                    | WalRecord::TakeoverPin { client, key, .. } = *r
                    {
                        *counts.entry((client, key)).or_insert(0i64) += 1;
                    }
                }
                for (ck, n) in counts {
                    prop_assert_eq!(n, d0.get(&ck).copied().unwrap_or(0).abs());
                }
            }
        }
    }
}
