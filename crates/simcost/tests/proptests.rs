//! Property tests: cost-model monotonicity and consistency over the
//! whole parameter space.

use proptest::prelude::*;
use simcost::{cost_in_situ, cost_on_disk, cost_simfs, Rates, Scenario};

fn arb_rates() -> impl Strategy<Value = Rates> {
    (0.1f64..5.0, 0.01f64..0.5).prop_map(|(compute, storage)| Rates {
        compute_per_node_hour: compute,
        storage_per_gib_month: storage,
    })
}

proptest! {
    /// On-disk cost is strictly increasing in the availability period
    /// and in the storage price.
    #[test]
    fn on_disk_monotone(rates in arb_rates(), months in 1.0f64..120.0, dr_h in 1.0f64..48.0) {
        let sc = Scenario::cosmo_paper(dr_h);
        let c1 = cost_on_disk(&sc, &rates, months).total();
        let c2 = cost_on_disk(&sc, &rates, months + 1.0).total();
        prop_assert!(c2 > c1);
        let dearer = Rates {
            storage_per_gib_month: rates.storage_per_gib_month * 2.0,
            ..rates
        };
        prop_assert!(cost_on_disk(&sc, &dearer, months).total() > c1);
    }

    /// SimFS cost is monotone in months, cache fraction, and
    /// re-simulated steps.
    #[test]
    fn simfs_monotone(
        rates in arb_rates(),
        months in 1.0f64..120.0,
        cache in 0.05f64..0.9,
        v in 0u64..200_000,
    ) {
        let sc = Scenario::cosmo_paper(8.0);
        let base = cost_simfs(&sc, &rates, months, cache, v).total();
        prop_assert!(cost_simfs(&sc, &rates, months + 1.0, cache, v).total() > base);
        prop_assert!(cost_simfs(&sc, &rates, months, (cache + 0.05).min(1.0), v).total() > base);
        prop_assert!(cost_simfs(&sc, &rates, months, cache, v + 1000).total() > base);
    }

    /// In-situ cost is independent of the period, additive in analyses,
    /// and zero-storage.
    #[test]
    fn in_situ_properties(
        rates in arb_rates(),
        analyses in prop::collection::vec((0u64..8000, 1u64..400), 1..50),
    ) {
        let sc = Scenario::cosmo_paper(8.0);
        let whole = cost_in_situ(&sc, &rates, &analyses);
        prop_assert_eq!(whole.storage, 0.0);
        prop_assert_eq!(whole.initial_sim, 0.0);
        let (a, b) = analyses.split_at(analyses.len() / 2);
        let sum = cost_in_situ(&sc, &rates, a).total() + cost_in_situ(&sc, &rates, b).total();
        prop_assert!((whole.total() - sum).abs() < 1e-6 * whole.total().max(1.0));
    }

    /// SimFS with zero re-simulations and full cache costs at least as
    /// much storage-wise as on-disk minus... sanity: with cache = 100%
    /// and V = 0, SimFS = on-disk + restart storage.
    #[test]
    fn simfs_full_cache_equals_on_disk_plus_restarts(
        rates in arb_rates(),
        months in 1.0f64..60.0,
        dr_h in 1.0f64..48.0,
    ) {
        let sc = Scenario::cosmo_paper(dr_h);
        let simfs = cost_simfs(&sc, &rates, months, 1.0, 0).total();
        let on_disk = cost_on_disk(&sc, &rates, months).total();
        let restarts = Scenario::cstore(sc.total_restart_gib(), months, &rates);
        prop_assert!((simfs - (on_disk + restarts)).abs() < 1e-6 * simfs.max(1.0));
    }

    /// Larger Δr always means fewer restart steps and less restart
    /// storage.
    #[test]
    fn restart_storage_decreases_with_dr(dr_h in 1.0f64..24.0) {
        let small = Scenario::cosmo_paper(dr_h);
        let large = Scenario::cosmo_paper(dr_h * 2.0);
        prop_assert!(large.n_restarts() <= small.n_restarts());
        prop_assert!(large.total_restart_gib() <= small.total_restart_gib());
    }
}
