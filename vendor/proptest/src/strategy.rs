//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use rand::Rng;
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// A rejection bubbling up from a filter; the runner discards the case.
pub type Reject = String;

/// A value generator. Unlike real proptest there is no shrinking: a
/// strategy draws a value directly.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value, or rejects the attempt (filters).
    fn gen_value(&self, rng: &mut TestRng) -> Result<Self::Value, Reject>;

    /// Transforms generated values.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Builds a second strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }

    /// Discards values failing the predicate (re-drawing up to a bound).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: impl Into<String>,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            source: self,
            whence: whence.into(),
            f,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Arc::new(self)
    }
}

/// A type-erased strategy (`Arc` so unions stay cloneable).
pub type BoxedStrategy<T> = Arc<dyn Strategy<Value = T>>;

/// Boxes a strategy (used by `prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Arc::new(s)
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> Result<T, Reject> {
        (**self).gen_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn gen_value(&self, rng: &mut TestRng) -> Result<S::Value, Reject> {
        (**self).gen_value(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng) -> Result<T, Reject> {
        Ok(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn gen_value(&self, rng: &mut TestRng) -> Result<O, Reject> {
        self.source.gen_value(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn gen_value(&self, rng: &mut TestRng) -> Result<T::Value, Reject> {
        let inner = (self.f)(self.source.gen_value(rng)?);
        inner.gen_value(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    source: S,
    whence: String,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn gen_value(&self, rng: &mut TestRng) -> Result<S::Value, Reject> {
        // Local re-draws keep whole-case discards rare.
        for _ in 0..64 {
            let v = self.source.gen_value(rng)?;
            if (self.f)(&v) {
                return Ok(v);
            }
        }
        Err(self.whence.clone())
    }
}

/// Weighted choice among boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T: Debug> Union<T> {
    /// A union of `(weight, strategy)` arms.
    ///
    /// # Panics
    /// Panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted arm");
        Union { arms, total }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> Result<T, Reject> {
        let mut ticket = rng.gen_range(0..self.total);
        for (weight, strat) in &self.arms {
            let weight = u64::from(*weight);
            if ticket < weight {
                return strat.gen_value(rng);
            }
            ticket -= weight;
        }
        unreachable!("ticket beyond total weight")
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> Result<$t, Reject> {
                Ok(rng.gen_range(self.clone()))
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> Result<$t, Reject> {
                Ok(rng.gen_range(self.clone()))
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn gen_value(&self, rng: &mut TestRng) -> Result<f64, Reject> {
        Ok(rng.gen_range(self.clone()))
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn gen_value(&self, rng: &mut TestRng) -> Result<f64, Reject> {
        let (lo, hi) = (*self.start(), *self.end());
        if lo == hi {
            return Ok(lo);
        }
        Ok(rng.gen_range(lo..hi))
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn gen_value(&self, rng: &mut TestRng) -> Result<f32, Reject> {
        Ok(rng.gen_range(self.clone()))
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn gen_value(&self, rng: &mut TestRng) -> Result<Self::Value, Reject> {
                let ($($name,)+) = self;
                Ok(($($name.gen_value(rng)?,)+))
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Strategy produced by [`crate::arbitrary::any`].
pub struct AnyStrategy<T> {
    pub(crate) _marker: PhantomData<T>,
}

impl<T: crate::arbitrary::Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> Result<T, Reject> {
        Ok(T::arbitrary(rng))
    }
}
