//! Virtual-time experiment harness: the DV driven by `simkit`'s engine.
//!
//! Reproduces the timing experiments (Figs. 16–19): an analysis issues
//! (possibly strided) accesses with think time `tau_cli`; misses block
//! it until the DV's re-simulations produce the step. Launch actions
//! become scheduled production streams — queueing delay plus restart
//! latency `alpha_sim`, then one `FileProduced` every `tau_sim` — and
//! kill actions cancel them. A [`simbatch::Cluster`] tracks node usage
//! for the figure annotations.
//!
//! Everything is deterministic given the experiment seed.

use crate::dv::{DataVirtualizer, DvAction, DvEvent, DvStats, SimId};
use crate::model::ContextCfg;
use simbatch::{Cluster, JobId, QueueModel};
use simkit::{Dur, Engine, SeedSeq, SimRng, SimTime};
use std::collections::HashMap;

/// One virtual-time experiment configuration.
#[derive(Clone)]
pub struct VirtualExperiment {
    /// Context (cadences, cache, policy, `s_max`, prefetch flag).
    pub cfg: ContextCfg,
    /// True restart latency of the simulator (excluding queueing).
    pub alpha_sim: Dur,
    /// True inter-production time of the simulator.
    pub tau_sim: Dur,
    /// Additional job queueing delay distribution.
    pub queue: QueueModel,
    /// Nodes per re-simulation (cluster accounting, figure annotations).
    pub nodes_per_sim: u32,
    /// Experiment seed.
    pub seed: u64,
}

/// Result of one analysis run.
#[derive(Clone, Debug)]
pub struct AnalysisResult {
    /// Wall-clock (virtual) time from first access to last consumption.
    pub completion: Dur,
    /// DV statistics at the end of the run.
    pub stats: DvStats,
    /// Peak concurrent node usage.
    pub peak_nodes: u32,
    /// Peak concurrent re-simulations.
    pub peak_sims: u32,
}

const ANALYSIS_CLIENT: u64 = 1;

struct RunningSim {
    keys_end: u64,
    next_key: u64,
    killed: bool,
}

struct World {
    dv: DataVirtualizer,
    cluster: Cluster,
    sims: HashMap<SimId, RunningSim>,
    rng: SimRng,
    exp: ExpParams,
    accesses: Vec<u64>,
    /// Next access index to issue.
    cursor: usize,
    /// Key the analysis is currently blocked on.
    waiting_for: Option<u64>,
    /// Previously consumed key, released at the next access.
    last_consumed: Option<u64>,
    done_at: Option<SimTime>,
    peak_sims: u32,
    failed: Vec<u64>,
}

#[derive(Clone, Copy)]
struct ExpParams {
    alpha_sim: Dur,
    tau_sim: Dur,
    tau_cli: Dur,
    queue: QueueModel,
    nodes_per_sim: u32,
    output_bytes: u64,
}

impl VirtualExperiment {
    /// Runs a single analysis over `accesses` with think time `tau_cli`;
    /// returns completion time and statistics.
    ///
    /// # Panics
    /// Panics if the run deadlocks (an access never gets served) — that
    /// would be a DV logic bug, not an experiment outcome.
    pub fn run_analysis(&self, accesses: &[u64], tau_cli: Dur) -> AnalysisResult {
        assert!(!accesses.is_empty(), "empty analysis");
        let mut dv = DataVirtualizer::new(self.cfg.clone());
        // The context configuration carries performance priors (§IV-A);
        // seed the estimators like a deployed SimFS would be.
        dv.seed_estimates(self.alpha_sim + self.queue.mean(), self.tau_sim);
        let cluster_nodes = (self.cfg.smax * self.nodes_per_sim).max(self.nodes_per_sim);
        let mut world = World {
            dv,
            cluster: Cluster::new(cluster_nodes),
            sims: HashMap::new(),
            rng: SeedSeq::new(self.seed).rng(0),
            exp: ExpParams {
                alpha_sim: self.alpha_sim,
                tau_sim: self.tau_sim,
                tau_cli,
                queue: self.queue,
                nodes_per_sim: self.nodes_per_sim,
                output_bytes: self.cfg.output_bytes,
            },
            accesses: accesses.to_vec(),
            cursor: 0,
            waiting_for: None,
            last_consumed: None,
            done_at: None,
            peak_sims: 0,
            failed: Vec::new(),
        };

        let mut engine: Engine<World> = Engine::new();
        engine.schedule_at(SimTime::ZERO, |en, w: &mut World| next_access(en, w));
        engine.run(&mut world);

        let done_at = world.done_at.unwrap_or_else(|| {
            panic!(
                "analysis deadlocked at access {}/{} (key {:?}, failed: {:?})",
                world.cursor,
                world.accesses.len(),
                world.waiting_for,
                world.failed
            )
        });
        AnalysisResult {
            completion: done_at.saturating_since(SimTime::ZERO),
            stats: world.dv.stats().clone(),
            peak_nodes: world.cluster.peak_used(),
            peak_sims: world.peak_sims,
        }
    }

    /// `T_single`: the time a single simulation serving all `m` accesses
    /// would take — `alpha_sim + m·tau_sim` (§VI). The in-situ bound the
    /// figures compare against.
    pub fn t_single(&self, m: u64) -> Dur {
        self.alpha_sim + self.queue.mean() + self.tau_sim.saturating_mul(m)
    }

    /// `T_lower`: restart latency plus serving all `m` steps with
    /// `s_max` simulations in parallel (§VI).
    pub fn t_lower(&self, m: u64) -> Dur {
        self.alpha_sim + self.queue.mean() + self.tau_sim.saturating_mul(m).div_u64(self.cfg.smax as u64)
    }

    /// Approximate prefetching warm-up time `T_pre ≈ 2·alpha + n·tau_sim`
    /// (§IV-C1a) where `n` is one restart interval.
    pub fn t_pre(&self) -> Dur {
        let alpha = self.alpha_sim + self.queue.mean();
        let b = self.cfg.steps.outputs_per_interval();
        alpha.saturating_mul(2) + self.tau_sim.saturating_mul(b)
    }
}

/// Issues the next analysis access (releasing the previous key).
fn next_access(en: &mut Engine<World>, w: &mut World) {
    if let Some(prev) = w.last_consumed.take() {
        let actions = w.dv.handle(en.now(), DvEvent::Release {
            client: ANALYSIS_CLIENT,
            key: prev,
        });
        apply_actions(en, w, actions);
    }
    if w.cursor >= w.accesses.len() {
        w.done_at = Some(en.now());
        return;
    }
    let key = w.accesses[w.cursor];
    w.cursor += 1;
    let actions = w.dv.handle(en.now(), DvEvent::Acquire {
        client: ANALYSIS_CLIENT,
        key,
    });
    let mut ready = false;
    let mut failed = false;
    for a in &actions {
        match a {
            DvAction::NotifyReady {
                client: ANALYSIS_CLIENT,
                key: k,
            } if *k == key => ready = true,
            DvAction::NotifyFailed { key: k, .. } if *k == key => failed = true,
            _ => {}
        }
    }
    apply_actions(en, w, actions);
    if failed {
        w.failed.push(key);
        // Skip the unservable key (out-of-timeline accesses in clamped
        // traces) and move on.
        en.schedule_in(Dur::ZERO, next_access);
    } else if ready {
        consume(en, w, key);
    } else {
        w.waiting_for = Some(key);
    }
}

/// The analysis consumes `key` for `tau_cli`, then issues the next
/// access.
fn consume(en: &mut Engine<World>, w: &mut World, key: u64) {
    w.last_consumed = Some(key);
    en.schedule_in(w.exp.tau_cli, next_access);
}

/// Applies DV actions to the virtual world.
fn apply_actions(en: &mut Engine<World>, w: &mut World, actions: Vec<DvAction>) {
    for action in actions {
        match action {
            DvAction::NotifyReady { client, key } => {
                debug_assert_eq!(client, ANALYSIS_CLIENT);
                if w.waiting_for == Some(key) {
                    w.waiting_for = None;
                    consume(en, w, key);
                }
            }
            DvAction::NotifyFailed { key, .. } => {
                if w.waiting_for == Some(key) {
                    w.waiting_for = None;
                    w.failed.push(key);
                    en.schedule_in(Dur::ZERO, next_access);
                }
            }
            DvAction::Launch { sim, keys, .. } => {
                w.sims.insert(
                    sim,
                    RunningSim {
                        keys_end: *keys.end(),
                        next_key: *keys.start(),
                        killed: false,
                    },
                );
                w.peak_sims = w.peak_sims.max(w.dv.active_sims() as u32);
                let events = w.cluster.submit(JobId(sim), w.exp.nodes_per_sim);
                debug_assert!(!events.is_empty(), "harness cluster never queues");
                let delay = w.exp.queue.sample(&mut w.rng) + w.exp.alpha_sim;
                en.schedule_in(delay, move |en, w: &mut World| sim_started(en, w, sim));
            }
            DvAction::Kill { sim } => {
                if let Some(s) = w.sims.get_mut(&sim) {
                    s.killed = true;
                }
                w.cluster.cancel(JobId(sim));
            }
            DvAction::Evict { .. } => {
                // Virtual storage: nothing to delete.
            }
        }
    }
}

fn sim_started(en: &mut Engine<World>, w: &mut World, sim: SimId) {
    if w.sims.get(&sim).is_none_or(|s| s.killed) {
        return;
    }
    let actions = w.dv.handle(en.now(), DvEvent::SimStarted { sim });
    apply_actions(en, w, actions);
    en.schedule_in(w.exp.tau_sim, move |en, w: &mut World| produce(en, w, sim));
}

fn produce(en: &mut Engine<World>, w: &mut World, sim: SimId) {
    let Some(s) = w.sims.get_mut(&sim) else {
        return;
    };
    if s.killed {
        w.sims.remove(&sim);
        return;
    }
    let key = s.next_key;
    s.next_key += 1;
    let finished = s.next_key > s.keys_end;
    let actions = w.dv.handle(en.now(), DvEvent::FileProduced {
        sim,
        key,
        size: w.exp.output_bytes,
    });
    apply_actions(en, w, actions);
    if finished {
        w.sims.remove(&sim);
        w.cluster.finish(JobId(sim));
        let actions = w.dv.handle(en.now(), DvEvent::SimFinished { sim });
        apply_actions(en, w, actions);
    } else {
        en.schedule_in(w.exp.tau_sim, move |en, w: &mut World| produce(en, w, sim));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::StepMath;

    /// Fig. 7/8-style micro configuration: Δr = 4 outputs per interval,
    /// alpha = 2 s, tau_sim = 1 s, tau_cli = 0.5 s.
    fn experiment(prefetch: bool, smax: u32) -> VirtualExperiment {
        let steps = StepMath::new(1, 4, 10_000);
        let cfg = ContextCfg::new("v", steps, 1, 1_000_000)
            .with_policy("lru")
            .with_smax(smax)
            .with_prefetch(prefetch);
        VirtualExperiment {
            cfg,
            alpha_sim: Dur::from_secs(2),
            tau_sim: Dur::from_secs(1),
            queue: QueueModel::None,
            nodes_per_sim: 4,
            seed: 7,
        }
    }

    #[test]
    fn cold_forward_scan_without_prefetch_pays_every_restart() {
        let exp = experiment(false, 8);
        let accesses: Vec<u64> = (1..=24).collect();
        let res = exp.run_analysis(&accesses, Dur::from_millis(500));
        // 6 intervals, each paying alpha (2 s) + 4·tau (4 s) ≈ 36 s
        // minimum; consumption overlaps production so the total is at
        // least alpha per interval plus all production time.
        assert_eq!(res.stats.restarts, 6);
        assert!(res.completion >= Dur::from_secs(6 * 2 + 24));
        assert_eq!(res.stats.produced_steps, 24);
    }

    #[test]
    fn prefetch_hides_restart_latency_on_forward_scan() {
        let no_pf = experiment(false, 8);
        let pf = experiment(true, 8);
        let accesses: Vec<u64> = (1..=96).collect();
        let slow = no_pf.run_analysis(&accesses, Dur::from_millis(500));
        let fast = pf.run_analysis(&accesses, Dur::from_millis(500));
        assert!(
            fast.completion < slow.completion,
            "prefetch {} !< no-prefetch {}",
            fast.completion,
            slow.completion
        );
        assert!(fast.stats.prefetch_launches > 0);
    }

    #[test]
    fn smax_bounds_concurrent_sims() {
        for smax in [1, 2, 4] {
            let exp = experiment(true, smax);
            let accesses: Vec<u64> = (1..=64).collect();
            let res = exp.run_analysis(&accesses, Dur::from_millis(250));
            assert!(
                res.peak_sims <= smax,
                "smax={smax} but peak={}",
                res.peak_sims
            );
            assert!(res.peak_nodes <= smax * 4);
        }
    }

    #[test]
    fn higher_smax_speeds_up_fast_analysis() {
        // Analysis 4x faster than the simulation: parallel prefetching
        // should shorten completion (the Fig. 16 effect).
        let accesses: Vec<u64> = (1..=96).collect();
        let t1 = experiment(true, 1)
            .run_analysis(&accesses, Dur::from_millis(250))
            .completion;
        let t4 = experiment(true, 4)
            .run_analysis(&accesses, Dur::from_millis(250))
            .completion;
        assert!(t4 < t1, "smax=4 ({t4}) should beat smax=1 ({t1})");
    }

    #[test]
    fn backward_scan_completes_and_benefits_from_cache() {
        let exp = experiment(true, 4);
        let accesses: Vec<u64> = (1..=48).rev().collect();
        let res = exp.run_analysis(&accesses, Dur::from_millis(500));
        // Each interval simulated at most a few times (first touch
        // materializes the rest for backward hits).
        assert!(res.stats.hits > 0, "backward hits within intervals");
        assert!(res.stats.produced_steps >= 48, "all steps materialized");
    }

    #[test]
    fn warm_cache_run_is_instant() {
        let exp = experiment(false, 8);
        // Run everything once... then a second run in the same world is
        // not supported; instead check a repeated-access trace.
        let accesses: Vec<u64> = (1..=8).chain(1..=8).collect();
        let res = exp.run_analysis(&accesses, Dur::from_millis(100));
        assert_eq!(res.stats.restarts, 2, "second pass fully cached");
    }

    #[test]
    fn out_of_timeline_accesses_are_skipped_not_deadlocked() {
        let exp = experiment(false, 8);
        let res = exp.run_analysis(&[1, 999_999_999, 2], Dur::from_millis(100));
        assert_eq!(res.stats.produced_steps, 4, "one interval");
    }

    #[test]
    fn deterministic_given_seed() {
        let exp = experiment(true, 4);
        let accesses: Vec<u64> = (1..=48).collect();
        let a = exp.run_analysis(&accesses, Dur::from_millis(300));
        let b = exp.run_analysis(&accesses, Dur::from_millis(300));
        assert_eq!(a.completion, b.completion);
        assert_eq!(a.stats.produced_steps, b.stats.produced_steps);
    }

    #[test]
    fn queueing_delay_slows_completion() {
        let mut exp = experiment(false, 8);
        let accesses: Vec<u64> = (1..=24).collect();
        let fast = exp.run_analysis(&accesses, Dur::from_millis(500)).completion;
        exp.queue = QueueModel::Constant(Dur::from_secs(30));
        let slow = exp.run_analysis(&accesses, Dur::from_millis(500)).completion;
        assert!(slow > fast + Dur::from_secs(30));
    }

    #[test]
    fn direction_change_kills_prefetched_sims() {
        // §IV-C: "SimFS tries to kill simulations prefetched by analyses
        // that ... changed analysis direction." A long restart latency
        // keeps the speculative simulations in flight (still in their
        // alpha phase) when the analysis abruptly jumps to a backward
        // scan elsewhere on the timeline — those sims serve nobody and
        // must be killed.
        let steps = StepMath::new(1, 4, 10_000);
        let cfg = ContextCfg::new("kill", steps, 1, 1_000_000)
            .with_policy("lru")
            .with_smax(4)
            .with_prefetch(true);
        let exp = VirtualExperiment {
            cfg,
            alpha_sim: Dur::from_secs(30),
            tau_sim: Dur::from_secs(1),
            queue: QueueModel::None,
            nodes_per_sim: 4,
            seed: 7,
        };
        let mut accesses: Vec<u64> = (1..=20).collect();
        accesses.extend((500..=530).rev());
        let res = exp.run_analysis(&accesses, Dur::from_millis(250));
        assert!(
            res.stats.kills > 0,
            "direction change must kill outstanding prefetches: {:?}",
            res.stats
        );
        // The run still completes every access.
        assert!(res.stats.hits + res.stats.misses >= accesses.len() as u64);
    }

    #[test]
    fn pollution_reset_fires_under_tiny_cache() {
        // §IV-C: a prefetched step evicted before its access is a cache
        // pollution signal. Cache of 8 steps with aggressive prefetching
        // over a long scan forces produced-then-evicted steps.
        let steps = StepMath::new(1, 4, 10_000);
        let cfg = ContextCfg::new("pollute", steps, 1, 8)
            .with_policy("lru")
            .with_smax(8)
            .with_prefetch(true);
        let exp = VirtualExperiment {
            cfg,
            alpha_sim: Dur::from_secs(8),
            tau_sim: Dur::from_millis(100),
            queue: QueueModel::None,
            nodes_per_sim: 1,
            seed: 11,
        };
        // Slow analysis: prefetched steps sit in the tiny cache and get
        // evicted by later productions before they are consumed.
        let accesses: Vec<u64> = (1..=120).collect();
        let res = exp.run_analysis(&accesses, Dur::from_secs(2));
        assert!(
            res.stats.pollution_resets > 0,
            "tiny cache + eager prefetch must trigger pollution resets: {:?}",
            res.stats
        );
        // Liveness: despite the churn, every step was served.
        assert_eq!(res.stats.hits + res.stats.misses, 120);
    }

    #[test]
    fn strided_analysis_is_detected_and_served() {
        // k = 3 strided forward scan: the agent must confirm the stride
        // and prefetching must still help.
        let exp = experiment(true, 4);
        let accesses: Vec<u64> = (1..=40).map(|i| i * 3).collect();
        let res = exp.run_analysis(&accesses, Dur::from_millis(250));
        assert!(res.stats.prefetch_launches > 0, "{:?}", res.stats);
        let no_pf = experiment(false, 4);
        let base = no_pf.run_analysis(&accesses, Dur::from_millis(250));
        assert!(
            res.completion <= base.completion,
            "strided prefetch should not slow things down: {} vs {}",
            res.completion,
            base.completion
        );
    }

    #[test]
    fn analytic_bounds_bracket_the_run() {
        let exp = experiment(true, 8);
        let m = 96u64;
        let accesses: Vec<u64> = (1..=m).collect();
        let res = exp.run_analysis(&accesses, Dur::from_millis(250));
        let t_lower = exp.t_lower(m);
        assert!(
            res.completion >= t_lower,
            "ran faster than the parallel lower bound: {} < {}",
            res.completion,
            t_lower
        );
    }
}

