//! Full-system integration: the production deployment shape — a DV
//! daemon launching *real* `simfs-simd` subprocesses over TCP, serving
//! a real analysis client (Fig. 2's complete workflow).

use simfs::prelude::*;
use simstore::checksum_db;
use simulators::SimKind;
use std::collections::HashMap;
use std::process::Command;
use std::sync::Arc;

/// Path of the sibling `simfs-simd` binary (provided by Cargo for
/// integration tests of the package that defines it).
fn simd_bin() -> &'static str {
    env!("CARGO_BIN_EXE_simfs-simd")
}

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "simfs-full-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs `simfs-simd --init` as a subprocess, then serves an analysis
/// through a daemon whose re-simulations are `simfs-simd` subprocesses.
#[test]
fn subprocess_resimulation_end_to_end() {
    let dir = fresh_dir("e2e");
    let (dd, dr, timesteps) = (2u64, 16u64, 160u64); // B = 8, N = 80

    // Initial simulation as the operator would run it.
    let status = Command::new(simd_bin())
        .args([
            "--sim", "heat2d", "--dd", "2", "--dr", "16", "--seed", "11",
            "--init", "--timesteps", "160",
            "--data-dir", dir.to_str().unwrap(),
        ])
        .status()
        .expect("spawn simfs-simd --init");
    assert!(status.success(), "initial simulation failed");

    let storage = StorageArea::create(&dir, u64::MAX).unwrap();
    let checksums = checksum_db::load(&dir.join(checksum_db::DB_FILENAME)).unwrap();
    assert_eq!(checksums.len(), 80, "one checksum per output step");

    // Daemon with a process launcher building real simfs-simd jobs.
    let steps = StepMath::new(dd, dr, timesteps);
    let sample = simulators::build_sim(SimKind::Heat2d, 11).output().encode();
    let ctx = ContextCfg::new("heat", steps, sample.len() as u64, u64::MAX / 4).with_smax(4);
    let driver = Arc::new(PatternDriver::new("out-", ".sdf", 6).with_program(
        simd_bin(),
        vec![
            "--sim".into(), "heat2d".into(),
            "--dd".into(), "2".into(),
            "--dr".into(), "16".into(),
            "--seed".into(), "11".into(),
        ],
    ));
    let server = DvServer::start(
        ServerConfig {
            ctx,
            driver: driver.clone(),
            storage: storage.clone(),
            launcher: Arc::new(ProcessLauncher::new()),
            checksums,
            dv_shards: 1,
            cluster: ClusterMember::SOLO,
            durability: DurabilityCfg::default(),
        },
        "127.0.0.1:0",
    )
    .unwrap();

    let mut client = SimfsClient::connect(server.addr(), "heat").unwrap();

    // Miss in the middle of the timeline: subprocess re-simulation.
    let status = client.acquire(&[21]).unwrap();
    assert!(status.ok(), "{status:?}");
    assert!(storage.exists(&driver.filename_of(21)));

    // Bitwise reproducibility through a *process* boundary.
    assert_eq!(client.bitrep(21).unwrap(), Some(true));

    // The interval partner steps land on disk too; key 21's readiness
    // precedes the tail of the interval, so synchronize on the last
    // step of the range before checking the whole interval.
    let status = client.acquire(&[24]).unwrap();
    assert!(status.ok(), "{status:?}");
    client.release(24).unwrap();
    for key in 17..=24 {
        assert!(storage.exists(&driver.filename_of(key)), "key {key}");
    }

    // Forward walk across an interval boundary: second interval is a
    // fresh subprocess.
    for key in 22..=27u64 {
        let status = client.acquire(&[key]).unwrap();
        assert!(status.ok(), "step {key}: {status:?}");
        client.release(key).unwrap();
    }
    let stats = server.stats();
    assert!(stats.restarts >= 2, "two intervals => at least two jobs");

    client.finalize().unwrap();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A boundary key (`key % B == 0`) is served by a restart dump — the
/// subprocess produces exactly one file.
#[test]
fn subprocess_boundary_dump() {
    let dir = fresh_dir("dump");
    Command::new(simd_bin())
        .args([
            "--sim", "synthetic", "--dd", "1", "--dr", "8", "--seed", "3",
            "--init", "--timesteps", "64",
            "--data-dir", dir.to_str().unwrap(),
        ])
        .status()
        .expect("init")
        .success()
        .then_some(())
        .expect("init failed");

    let storage = StorageArea::create(&dir, u64::MAX).unwrap();
    let checksums = checksum_db::load(&dir.join(checksum_db::DB_FILENAME)).unwrap();
    let ctx = ContextCfg::new(
        "syn",
        StepMath::new(1, 8, 64),
        1024,
        u64::MAX / 4,
    );
    let driver = Arc::new(PatternDriver::new("out-", ".sdf", 6).with_program(
        simd_bin(),
        vec![
            "--sim".into(), "synthetic".into(),
            "--dd".into(), "1".into(),
            "--dr".into(), "8".into(),
            "--seed".into(), "3".into(),
        ],
    ));
    let server = DvServer::start(
        ServerConfig {
            ctx,
            driver,
            storage: storage.clone(),
            launcher: Arc::new(ProcessLauncher::new()),
            checksums,
            dv_shards: 1,
            cluster: ClusterMember::SOLO,
            durability: DurabilityCfg::default(),
        },
        "127.0.0.1:0",
    )
    .unwrap();

    let mut client = SimfsClient::connect(server.addr(), "syn").unwrap();
    let status = client.acquire(&[16]).unwrap(); // 16 % 8 == 0: boundary
    assert!(status.ok());
    assert_eq!(client.bitrep(16).unwrap(), Some(true));
    let produced = server.stats().produced_steps;
    assert_eq!(produced, 1, "boundary key is a single restart dump");

    client.finalize().unwrap();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A failed subprocess (missing restart file) surfaces as a failed
/// acquire, not a hang.
#[test]
fn subprocess_failure_reports_cleanly() {
    let dir = fresh_dir("fail");
    std::fs::create_dir_all(&dir).unwrap();
    let storage = StorageArea::create(&dir, u64::MAX).unwrap();
    // No --init: restart files are missing, every re-simulation fails.
    let ctx = ContextCfg::new("broken", StepMath::new(1, 8, 64), 1024, u64::MAX / 4);
    let driver = Arc::new(PatternDriver::new("out-", ".sdf", 6).with_program(
        simd_bin(),
        vec![
            "--sim".into(), "synthetic".into(),
            "--dd".into(), "1".into(),
            "--dr".into(), "8".into(),
        ],
    ));
    let server = DvServer::start(
        ServerConfig {
            ctx,
            driver,
            storage,
            launcher: Arc::new(ProcessLauncher::new()),
            checksums: HashMap::new(),
            dv_shards: 1,
            cluster: ClusterMember::SOLO,
            durability: DurabilityCfg::default(),
        },
        "127.0.0.1:0",
    )
    .unwrap();

    let mut client = SimfsClient::connect(server.addr(), "broken").unwrap();
    let mut req = client.acquire_nb(&[5]).unwrap();
    // The subprocess exits non-zero without ever connecting; the DV
    // notices the dead job via the launcher... in this implementation
    // the process dies before Hello, so the *connection-loss* path is
    // not taken. The acquire must still fail once the failure is
    // detected. Poll with test() under a deadline.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
    let mut resolved = false;
    while std::time::Instant::now() < deadline {
        let (done, status) = client.test(&mut req).unwrap();
        if done {
            assert!(!status.ok(), "acquire must fail, got {status:?}");
            resolved = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    assert!(resolved, "failure was never reported");
    client.finalize().unwrap();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
